/**
 * @file
 * A shared worker pool for data-parallel loops.
 *
 * One process-wide pool (`ThreadPool::global()`) backs every parallel
 * stage of the pipeline: the band-parallel pattern analysis, the
 * (tile size x config) schedule sweep and the benchmark suite runner.
 * Sizing is uniform — `--threads N` on the CLI and `SPASM_THREADS` in
 * the bench harness both call `setGlobalConcurrency`.
 *
 * `parallelFor(n, body)` runs `body(0..n-1)` with the *calling thread
 * participating*: indices are handed out from a shared atomic cursor
 * and the caller drains them alongside the workers.  This makes
 * nested calls safe — a `parallelFor` issued from inside a pool task
 * always makes progress on its own thread even when every worker is
 * busy — and makes a concurrency-1 pool exactly equivalent to a
 * serial loop.
 *
 * Exceptions thrown by `body` are captured and the one from the
 * lowest iteration index is rethrown on the calling thread once all
 * claimed iterations have finished (remaining indices still run, so
 * the choice of exception is deterministic).
 *
 * The cancellation-aware overload checks a `CancellationToken` before
 * every iteration: once the token trips, all not-yet-started
 * iterations are skipped (claimed and counted, body never invoked)
 * and the call returns normally — the *caller* decides whether to
 * throw, typically via `token.throwIfCancelled()`.  Iterations
 * already executing when the token trips run to completion.
 *
 * Health accounting: while the obs registry is enabled the pool
 * tracks queue depth (gauge `threadpool.queue_depth`), help-request
 * queue wait (histogram `threadpool.queue_wait_us`) and per-worker
 * busy time (`healthSnapshot()` / `publishHealth()` gauges).  All of
 * it is wall-clock and scheduling dependent, so the stats JSON drops
 * every `threadpool.*` metric under `--deterministic` — see
 * docs/observability.md.  With the registry disabled the hot paths
 * stay branch-only, and the accounting never affects loop results.
 */

#ifndef SPASM_SUPPORT_THREAD_POOL_HH
#define SPASM_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spasm {

class CancellationToken;

class ThreadPool
{
  public:
    /**
     * @param concurrency Total threads used by parallelFor including
     *        the calling thread; the pool spawns `concurrency - 1`
     *        workers.  Clamped to >= 1.
     */
    explicit ThreadPool(unsigned concurrency);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the calling thread). */
    unsigned concurrency() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run body(i) for every i in [0, n), blocking until all
     * iterations finished.  Iterations are unordered across threads;
     * the caller participates.  Rethrows the lowest-index exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Cancellation-aware variant: iterations whose index is claimed
     * after @p cancel trips are skipped deterministically (the body
     * never runs for them).  Returns normally either way; poll the
     * token afterwards to turn the trip into a typed error.  A null
     * token behaves exactly like the plain overload.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body,
                     const CancellationToken *cancel);

    /**
     * Queue a detached task on a worker thread and return
     * immediately.  Unlike parallelFor the caller does not
     * participate and does not wait; the task owns its closure.
     * Tasks must not throw — an escaped exception is swallowed (the
     * fork-join Loop machinery captures it but nobody joins to
     * rethrow), so wrap fallible work in its own try/catch.  With a
     * concurrency-1 pool (no workers) the task runs inline on the
     * calling thread before post() returns, which keeps a serial
     * pool exactly equivalent to direct calls.
     */
    void post(std::function<void()> task);

    /**
     * Wall-clock health counters, accumulated while the obs registry
     * is enabled (all zero otherwise).  Queue wait is the time a
     * help request sat queued before a worker picked it up; busy
     * time is per helper thread (the caller is not counted — it is
     * busy by construction).
     */
    struct HealthSnapshot
    {
        unsigned workers = 0;    ///< helper threads in the pool
        std::uint64_t loops = 0; ///< parallelFor calls that queued
        std::uint64_t queueWaitCount = 0;
        std::uint64_t queueWaitTotalNs = 0;
        std::uint64_t queueWaitMaxNs = 0;
        std::vector<std::uint64_t> workerBusyNs; ///< one per helper
    };

    HealthSnapshot healthSnapshot() const;

    /** Zero the health counters (profile-window lifecycle). */
    void resetHealth();

    /**
     * Publish the snapshot into the obs registry as gauges:
     * `threadpool.workers`, `threadpool.loops` and per-worker
     * `threadpool.worker.<i>.busy_fraction` over the registry's
     * elapsed window.  No-op while the registry is disabled.
     */
    void publishHealth() const;

    /** The process-wide pool (lazily built at defaultConcurrency). */
    static ThreadPool &global();

    /**
     * Resize the process-wide pool (used by `--threads N` /
     * `SPASM_THREADS`).  Not safe while a parallelFor is in flight on
     * the global pool; call it from startup code.
     */
    static void setGlobalConcurrency(unsigned concurrency);

    /** `hardware_concurrency`, at least 1. */
    static unsigned defaultConcurrency();

  private:
    struct Loop;

    void workerMain(std::size_t worker_index);
    static void drain(Loop &loop);

    std::vector<std::thread> workers_;
    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<std::shared_ptr<Loop>> queue_;
    bool stopping_ = false;

    /** Health accounting (obs-gated; see the file comment). */
    std::atomic<std::uint64_t> loops_{0};
    std::atomic<std::uint64_t> queueWaitCount_{0};
    std::atomic<std::uint64_t> queueWaitTotalNs_{0};
    std::atomic<std::uint64_t> queueWaitMaxNs_{0};
    std::unique_ptr<std::atomic<std::uint64_t>[]> workerBusyNs_;
};

} // namespace spasm

#endif // SPASM_SUPPORT_THREAD_POOL_HH
