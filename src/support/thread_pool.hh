/**
 * @file
 * A shared worker pool for data-parallel loops.
 *
 * One process-wide pool (`ThreadPool::global()`) backs every parallel
 * stage of the pipeline: the band-parallel pattern analysis, the
 * (tile size x config) schedule sweep and the benchmark suite runner.
 * Sizing is uniform — `--threads N` on the CLI and `SPASM_THREADS` in
 * the bench harness both call `setGlobalConcurrency`.
 *
 * `parallelFor(n, body)` runs `body(0..n-1)` with the *calling thread
 * participating*: indices are handed out from a shared atomic cursor
 * and the caller drains them alongside the workers.  This makes
 * nested calls safe — a `parallelFor` issued from inside a pool task
 * always makes progress on its own thread even when every worker is
 * busy — and makes a concurrency-1 pool exactly equivalent to a
 * serial loop.
 *
 * Exceptions thrown by `body` are captured and the one from the
 * lowest iteration index is rethrown on the calling thread once all
 * claimed iterations have finished (remaining indices still run, so
 * the choice of exception is deterministic).
 *
 * The cancellation-aware overload checks a `CancellationToken` before
 * every iteration: once the token trips, all not-yet-started
 * iterations are skipped (claimed and counted, body never invoked)
 * and the call returns normally — the *caller* decides whether to
 * throw, typically via `token.throwIfCancelled()`.  Iterations
 * already executing when the token trips run to completion.
 */

#ifndef SPASM_SUPPORT_THREAD_POOL_HH
#define SPASM_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spasm {

class CancellationToken;

class ThreadPool
{
  public:
    /**
     * @param concurrency Total threads used by parallelFor including
     *        the calling thread; the pool spawns `concurrency - 1`
     *        workers.  Clamped to >= 1.
     */
    explicit ThreadPool(unsigned concurrency);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the calling thread). */
    unsigned concurrency() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run body(i) for every i in [0, n), blocking until all
     * iterations finished.  Iterations are unordered across threads;
     * the caller participates.  Rethrows the lowest-index exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Cancellation-aware variant: iterations whose index is claimed
     * after @p cancel trips are skipped deterministically (the body
     * never runs for them).  Returns normally either way; poll the
     * token afterwards to turn the trip into a typed error.  A null
     * token behaves exactly like the plain overload.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body,
                     const CancellationToken *cancel);

    /** The process-wide pool (lazily built at defaultConcurrency). */
    static ThreadPool &global();

    /**
     * Resize the process-wide pool (used by `--threads N` /
     * `SPASM_THREADS`).  Not safe while a parallelFor is in flight on
     * the global pool; call it from startup code.
     */
    static void setGlobalConcurrency(unsigned concurrency);

    /** `hardware_concurrency`, at least 1. */
    static unsigned defaultConcurrency();

  private:
    struct Loop;

    void workerMain();
    static void drain(Loop &loop);

    std::vector<std::thread> workers_;
    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<std::shared_ptr<Loop>> queue_;
    bool stopping_ = false;
};

} // namespace spasm

#endif // SPASM_SUPPORT_THREAD_POOL_HH
