/**
 * @file
 * Bit-manipulation helpers used throughout the pattern engine.
 *
 * Local patterns and template patterns are represented as bitmasks over a
 * PxP grid (P <= 4), packed row-major into the low P*P bits of a 16-bit
 * word: bit (r * P + c) is set iff cell (r, c) is non-zero.
 */

#ifndef SPASM_SUPPORT_BITS_HH
#define SPASM_SUPPORT_BITS_HH

#include <bit>
#include <cstdint>

namespace spasm {

/** Count set bits. */
inline int
popcount(std::uint32_t v)
{
    return std::popcount(v);
}

/** Index of the lowest set bit; undefined for v == 0. */
inline int
lowestSetBit(std::uint32_t v)
{
    return std::countr_zero(v);
}

/** Extract the bit field [lo, lo+width) of v. */
inline std::uint32_t
bitField(std::uint32_t v, int lo, int width)
{
    return (v >> lo) & ((1u << width) - 1u);
}

/** Insert value into bit field [lo, lo+width) of v and return result. */
inline std::uint32_t
insertBitField(std::uint32_t v, int lo, int width, std::uint32_t value)
{
    const std::uint32_t mask = ((1u << width) - 1u) << lo;
    return (v & ~mask) | ((value << lo) & mask);
}

/** Test bit i of v. */
inline bool
testBit(std::uint32_t v, int i)
{
    return (v >> i) & 1u;
}

/** Round x up to the next multiple of m (m > 0). */
inline std::uint64_t
roundUp(std::uint64_t x, std::uint64_t m)
{
    return (x + m - 1) / m * m;
}

/** Ceiling division for non-negative integers. */
inline std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace spasm

#endif // SPASM_SUPPORT_BITS_HH
