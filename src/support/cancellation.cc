#include "support/cancellation.hh"

#include "support/error.hh"

namespace spasm {

void
CancellationToken::setDeadline(double ms_from_now)
{
    deadlineMs_ = ms_from_now;
    deadline_ = monoNow() +
        std::chrono::duration_cast<MonoClock::duration>(
            std::chrono::duration<double, std::milli>(ms_from_now));
    hasDeadline_ = true;
}

bool
CancellationToken::cancelled() const
{
    if (reason_.load(std::memory_order_acquire) != 0)
        return true;
    if (signalFlag_ != nullptr && *signalFlag_ != 0) {
        latch(CancelReason::Cancelled);
        return true;
    }
    if (parent_ != nullptr && parent_->cancelled()) {
        latch(parent_->reason() == CancelReason::Timeout
                  ? CancelReason::Timeout
                  : CancelReason::Cancelled);
        return true;
    }
    if (hasDeadline_ && monoNow() >= deadline_) {
        latch(CancelReason::Timeout);
        return true;
    }
    return false;
}

void
CancellationToken::throwIfCancelled(const char *where) const
{
    if (!cancelled())
        return;
    if (reason() == CancelReason::Timeout) {
        throw Error::atInput(ErrorCode::Timeout, where,
                             "deadline of %g ms expired",
                             deadlineMs_);
    }
    throw Error::atInput(ErrorCode::Cancelled, where, "cancelled");
}

} // namespace spasm
