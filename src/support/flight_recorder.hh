/**
 * @file
 * Crash flight recorder: a fixed-size lock-free ring of recent
 * events — structured log records (support/logging.hh), span
 * completions (support/obs.hh) and free-form markers — plus the last
 * telemetry snapshot line, dumped as one `spasm-flight-v1` JSON file
 * whenever the process dies abnormally.
 *
 * Aviation semantics: the recorder is cheap enough to leave on for a
 * whole unattended campaign (`note` is an atomic ticket grab plus a
 * seqlock-guarded slot write, no mutex, no allocation after arming)
 * and the telemetry sampler persists the ring periodically, so even a
 * `kill -9` — which no handler can observe — leaves the most recent
 * periodic dump next to the campaign journal.  For the deaths we CAN
 * observe, the dump is rewritten synchronously with the triggering
 * record:
 *
 *  - `spasm_panic` / `spasm_fatal` (support/logging.hh) dump before
 *    aborting/exiting;
 *  - a `std::terminate` handler dumps on unhandled exceptions;
 *  - fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT,
 *    installed by `installCrashHandlers`) dump best-effort, then
 *    restore the default disposition and re-raise so the exit status
 *    still reports the signal.
 *
 * Dumps go through the atomic temp-and-rename idiom
 * (support/atomic_file.hh): the file at the dump path is always a
 * complete, parseable record, never a torn one.  Crash-path dumps
 * latch: the first panic/fatal/terminate/signal dump wins and later
 * ones (e.g. the SIGABRT raised by the panic's own abort) are
 * no-ops, while periodic dumps never latch.
 *
 * The signal-handler dump is deliberately best-effort: rename-based
 * file writes are not async-signal-safe in the strict POSIX sense,
 * but the process is already dead — a corrupt dump costs nothing
 * over no dump, and the atomic rename means a previously persisted
 * periodic dump survives any failure.
 *
 * Disarmed, every entry point is one relaxed atomic load.
 */

#ifndef SPASM_SUPPORT_FLIGHT_RECORDER_HH
#define SPASM_SUPPORT_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace spasm {

/** Schema tag of the dumped post-mortem record. */
inline constexpr const char *kFlightSchema = "spasm-flight-v1";
inline constexpr int kFlightSchemaMinor = 0;

/** What kind of event one ring slot holds. */
enum class FlightKind
{
    Log,    ///< a structured log record (warn/inform/error/debug)
    Span,   ///< an obs span completion
    Marker, ///< free-form breadcrumb (campaign phase, job start...)
};

class FlightRecorder
{
  public:
    /** The process-wide recorder used by logging/obs/telemetry. */
    static FlightRecorder &global();

    /**
     * Arm the ring and set the dump destination.  @p deterministic
     * zeroes the wall-clock and pid stamps in dumps (test fixtures).
     * Lifecycle operation: call from startup code.
     */
    void arm(const std::string &dump_path, bool deterministic = false);

    /** Disarm; subsequent note()/dump() calls are no-ops. */
    void disarm();

    bool armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Dump destination configured by arm() ("" while disarmed). */
    std::string dumpPath() const;

    /**
     * Append one event.  Lock-free: a ticket from an atomic counter
     * picks the slot, a per-slot seqlock keeps a concurrent dump from
     * reading a half-written record.  Strings are truncated to the
     * fixed slot width.  No-op while disarmed.
     */
    void note(FlightKind kind, std::string_view level,
              std::string_view component, std::string_view message);

    /** Remember the most recent telemetry sample line (verbatim);
     *  it is embedded in the next dump. */
    void setLastSnapshot(std::string_view json_line);

    /**
     * Write the `spasm-flight-v1` post-mortem at the armed path via
     * the atomic-file idiom.  @p reason is the death class
     * ("panic"/"fatal"/"terminate"/"signal"/"periodic"/"shutdown"),
     * @p detail the triggering record (diagnostic text or signal
     * name).  Crash reasons (everything except periodic/shutdown)
     * latch — only the first wins.  Never throws; returns false when
     * disarmed, latched out, or the write failed.
     */
    bool dump(const char *reason, const char *detail) noexcept;

    /**
     * Install the `std::terminate` handler and the fatal-signal
     * handlers (SEGV/BUS/FPE/ILL/ABRT) that dump the armed recorder.
     * Idempotent; handlers are process-wide and chain to the previous
     * terminate handler / default signal disposition.
     */
    static void installCrashHandlers();

    /** Fixed ring capacity (events kept = the most recent 256). */
    static constexpr std::size_t kSlots = 256;

  private:
    FlightRecorder() = default;

    struct Slot
    {
        /** Seqlock: 0 empty, odd while writing, even complete. */
        std::atomic<std::uint64_t> seq{0};
        std::uint64_t ticket = 0;
        FlightKind kind = FlightKind::Marker;
        std::uint32_t thread = 0;
        double tMs = 0.0;
        char level[12] = {0};
        char component[24] = {0};
        char message[192] = {0};
    };

    void writeDump(std::ostream &os, const char *reason,
                   const char *detail) const;

    std::atomic<bool> armed_{false};
    std::atomic<std::uint64_t> next_{0};
    std::atomic<bool> crashLatched_{false};
    Slot slots_[kSlots];

    mutable std::mutex metaMutex_; ///< path + snapshot, not the ring
    std::string path_;
    std::string lastSnapshot_;
    bool deterministic_ = false;
    std::int64_t epochNs_ = 0;
};

} // namespace spasm

#endif // SPASM_SUPPORT_FLIGHT_RECORDER_HH
