/**
 * @file
 * Atomic file writes: stream into a sibling temp file, then rename()
 * over the destination.  A crashed, killed or failed producer can
 * never leave a truncated file at the target path — important for the
 * bench/stats JSON sinks, whose half-written `spasm-bench-v1` output
 * would otherwise poison a later `spasm compare`.
 */

#ifndef SPASM_SUPPORT_ATOMIC_FILE_HH
#define SPASM_SUPPORT_ATOMIC_FILE_HH

#include <functional>
#include <ostream>
#include <string>

namespace spasm {

/**
 * Write @p path atomically: @p producer streams into
 * `<path>.tmp.<pid>` which is renamed over @p path only after the
 * stream flushed cleanly.  On any failure (open error, stream error,
 * producer exception) the temp file is removed, the previous contents
 * of @p path are left untouched, and fatal()/the exception propagates.
 */
void writeFileAtomic(const std::string &path,
                     const std::function<void(std::ostream &)> &producer);

} // namespace spasm

#endif // SPASM_SUPPORT_ATOMIC_FILE_HH
