/**
 * @file
 * Atomic file writes: stream into a sibling temp file, then rename()
 * over the destination.  A crashed, killed or failed producer can
 * never leave a truncated file at the target path — important for the
 * bench/stats JSON sinks, whose half-written `spasm-bench-v1` output
 * would otherwise poison a later `spasm compare`.
 */

#ifndef SPASM_SUPPORT_ATOMIC_FILE_HH
#define SPASM_SUPPORT_ATOMIC_FILE_HH

#include <functional>
#include <ostream>
#include <string>

namespace spasm {

/**
 * Write @p path atomically: @p producer streams into
 * `<path>.tmp.<pid>` which is renamed over @p path only after the
 * stream flushed cleanly.  On *every* failure path — open error,
 * stream error, rename error, producer exception — the temp file is
 * unlinked before the error propagates, so no orphaned `.tmp.*` files
 * accumulate next to the target.  I/O failures throw a typed
 * `spasm::Error{Io}` (recoverable: a batch campaign records the job
 * as failed and keeps going); a producer exception is rethrown as-is.
 * The previous contents of @p path are left untouched in all cases.
 */
void writeFileAtomic(const std::string &path,
                     const std::function<void(std::ostream &)> &producer);

} // namespace spasm

#endif // SPASM_SUPPORT_ATOMIC_FILE_HH
