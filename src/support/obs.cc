#include "support/obs.hh"

#include <algorithm>
#include <cmath>

namespace spasm {
namespace obs {

void
HistogramData::observe(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;

    // Algorithm R reservoir sampling with a splitmix-style PRNG so
    // identical sample sequences keep identical reservoirs (the JSON
    // determinism test relies on this).
    if (reservoir_.size() < kReservoirCap) {
        reservoir_.push_back(v);
        return;
    }
    rng_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = rng_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const std::uint64_t slot = z % count_;
    if (slot < kReservoirCap)
        reservoir_[static_cast<std::size_t>(slot)] = v;
}

double
HistogramData::percentile(double q) const
{
    if (reservoir_.empty())
        return 0.0;
    std::vector<double> sorted = reservoir_;
    std::sort(sorted.begin(), sorted.end());
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

void
Registry::setEnabled(bool enabled)
{
    if (enabled && !enabled_)
        epoch_ = Clock::now();
    enabled_ = enabled;
}

void
Registry::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    spans_.clear();
    stack_.clear();
    epoch_ = Clock::now();
}

void
Registry::add(std::string_view name, std::uint64_t delta)
{
    if (!enabled_)
        return;
    const auto it = counters_.find(name);
    if (it != counters_.end())
        it->second += delta;
    else
        counters_.emplace(std::string(name), delta);
}

void
Registry::set(std::string_view name, double value)
{
    if (!enabled_)
        return;
    const auto it = gauges_.find(name);
    if (it != gauges_.end())
        it->second = value;
    else
        gauges_.emplace(std::string(name), value);
}

void
Registry::observe(std::string_view name, double sample)
{
    if (!enabled_)
        return;
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string(name), HistogramData{})
                 .first;
    }
    it->second.observe(sample);
}

SpanId
Registry::beginSpan(std::string_view name)
{
    if (!enabled_)
        return 0;
    SpanRecord rec;
    rec.name = std::string(name);
    rec.startUs = nowUs();
    rec.depth = static_cast<int>(stack_.size());
    rec.parent = stack_.empty() ? 0 : stack_.back();
    spans_.push_back(std::move(rec));
    const SpanId id = spans_.size();
    stack_.push_back(id);
    return id;
}

void
Registry::endSpan(SpanId id)
{
    if (id == 0 || id > spans_.size())
        return;
    SpanRecord &rec = spans_[id - 1];
    const std::uint64_t now = nowUs();
    rec.durUs = now > rec.startUs ? now - rec.startUs : 0;
    // Pop the span (and, defensively, anything opened after it that
    // was never closed — destruction order makes this the common
    // case only for exceptions).
    while (!stack_.empty()) {
        const SpanId top = stack_.back();
        stack_.pop_back();
        if (top == id)
            break;
    }
}

void
Registry::spanTag(SpanId id, std::string_view key,
                  std::string_view value)
{
    if (id == 0 || id > spans_.size())
        return;
    auto &tags = spans_[id - 1].tags;
    for (auto &kv : tags) {
        if (kv.first == key) {
            kv.second = std::string(value);
            return;
        }
    }
    tags.emplace_back(std::string(key), std::string(value));
}

std::uint64_t
Registry::nowUs() const
{
    const auto d = Clock::now() - epoch_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(d)
            .count());
}

} // namespace obs
} // namespace spasm
