#include "support/obs.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/flight_recorder.hh"

namespace spasm {
namespace obs {

void
HistogramData::observe(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;

    // Algorithm R reservoir sampling with a splitmix-style PRNG so
    // identical sample sequences keep identical reservoirs (the JSON
    // determinism test relies on this).
    if (reservoir_.size() < kReservoirCap) {
        reservoir_.push_back(v);
        return;
    }
    rng_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = rng_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const std::uint64_t slot = z % count_;
    if (slot < kReservoirCap)
        reservoir_[static_cast<std::size_t>(slot)] = v;
}

double
HistogramData::percentile(double q) const
{
    if (reservoir_.empty())
        return 0.0;
    std::vector<double> sorted = reservoir_;
    std::sort(sorted.begin(), sorted.end());
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Registry::MetricShard &
Registry::shardFor(std::string_view name)
{
    // FNV-1a; names are short and this is off the disabled fast path.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return shards_[h % kMetricShards];
}

std::vector<SpanId> &
Registry::tlsStack()
{
    struct TlsStack
    {
        const Registry *owner = nullptr;
        std::uint64_t generation = 0;
        std::vector<SpanId> stack;
    };
    static thread_local TlsStack tls;
    const std::uint64_t gen =
        generation_.load(std::memory_order_relaxed);
    if (tls.owner != this || tls.generation != gen) {
        tls.owner = this;
        tls.generation = gen;
        tls.stack.clear();
    }
    return tls.stack;
}

void
Registry::setEnabled(bool enabled)
{
    if (enabled && !this->enabled()) {
        epochNs_.store(Clock::now().time_since_epoch().count(),
                       std::memory_order_relaxed);
        generation_.fetch_add(1, std::memory_order_relaxed);
    }
    enabled_.store(enabled, std::memory_order_relaxed);
}

void
Registry::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.counters.clear();
        shard.gauges.clear();
        shard.histograms.clear();
    }
    {
        std::lock_guard<std::mutex> lock(spansMutex_);
        spans_.clear();
    }
    epochNs_.store(Clock::now().time_since_epoch().count(),
                   std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_relaxed);
}

void
Registry::add(std::string_view name, std::uint64_t delta)
{
    if (!enabled())
        return;
    MetricShard &shard = shardFor(name);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.counters.find(name);
    if (it != shard.counters.end())
        it->second += delta;
    else
        shard.counters.emplace(std::string(name), delta);
}

void
Registry::set(std::string_view name, double value)
{
    if (!enabled())
        return;
    MetricShard &shard = shardFor(name);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.gauges.find(name);
    if (it != shard.gauges.end())
        it->second = value;
    else
        shard.gauges.emplace(std::string(name), value);
}

void
Registry::observe(std::string_view name, double sample)
{
    if (!enabled())
        return;
    MetricShard &shard = shardFor(name);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.histograms.find(name);
    if (it == shard.histograms.end()) {
        it = shard.histograms
                 .emplace(std::string(name), HistogramData{})
                 .first;
    }
    it->second.observe(sample);
}

SpanId
Registry::beginSpan(std::string_view name)
{
    if (!enabled())
        return 0;
    std::vector<SpanId> &stack = tlsStack();
    SpanRecord rec;
    rec.name = std::string(name);
    rec.startUs = nowUs();
    rec.depth = static_cast<int>(stack.size());
    rec.parent = stack.empty() ? 0 : stack.back();
    SpanId id;
    {
        std::lock_guard<std::mutex> lock(spansMutex_);
        spans_.push_back(std::move(rec));
        id = spans_.size();
    }
    stack.push_back(id);
    return id;
}

void
Registry::endSpan(SpanId id)
{
    if (id == 0)
        return;
    const std::uint64_t now = nowUs();
    // Only pay for the copy when the crash flight recorder wants a
    // breadcrumb (support/flight_recorder.hh); disarmed it is one
    // relaxed load.
    const bool flight = FlightRecorder::global().armed();
    std::string flight_note;
    {
        std::lock_guard<std::mutex> lock(spansMutex_);
        if (id > spans_.size())
            return;
        SpanRecord &rec = spans_[id - 1];
        rec.durUs = now > rec.startUs ? now - rec.startUs : 0;
        if (flight) {
            char buf[160];
            std::snprintf(buf, sizeof(buf), "%s (%.3f ms)",
                          rec.name.c_str(),
                          static_cast<double>(rec.durUs) / 1e3);
            flight_note = buf;
        }
    }
    if (flight)
        FlightRecorder::global().note(FlightKind::Span, "info", "obs",
                                      flight_note);
    // Pop the span (and, defensively, anything this thread opened
    // after it that was never closed — destruction order makes this
    // the common case only for exceptions).
    std::vector<SpanId> &stack = tlsStack();
    while (!stack.empty()) {
        const SpanId top = stack.back();
        stack.pop_back();
        if (top == id)
            break;
    }
}

void
Registry::spanTag(SpanId id, std::string_view key,
                  std::string_view value)
{
    if (id == 0)
        return;
    std::lock_guard<std::mutex> lock(spansMutex_);
    if (id > spans_.size())
        return;
    auto &tags = spans_[id - 1].tags;
    for (auto &kv : tags) {
        if (kv.first == key) {
            kv.second = std::string(value);
            return;
        }
    }
    tags.emplace_back(std::string(key), std::string(value));
}

SpanId
Registry::recordSpan(
    std::string_view name, std::uint64_t start_us,
    std::uint64_t dur_us,
    std::vector<std::pair<std::string, std::string>> tags)
{
    if (!enabled())
        return 0;
    std::vector<SpanId> &stack = tlsStack();
    SpanRecord rec;
    rec.name = std::string(name);
    rec.startUs = start_us;
    rec.durUs = dur_us;
    rec.depth = static_cast<int>(stack.size());
    rec.parent = stack.empty() ? 0 : stack.back();
    rec.tags = std::move(tags);
    std::lock_guard<std::mutex> lock(spansMutex_);
    spans_.push_back(std::move(rec));
    return spans_.size();
}

std::uint64_t
Registry::nowUs() const
{
    const std::int64_t now =
        Clock::now().time_since_epoch().count();
    const std::int64_t epoch =
        epochNs_.load(std::memory_order_relaxed);
    const std::int64_t d = now > epoch ? now - epoch : 0;
    using Ns = Clock::duration;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Ns(d))
            .count());
}

std::map<std::string, std::uint64_t, std::less<>>
Registry::counters() const
{
    std::map<std::string, std::uint64_t, std::less<>> out;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        out.insert(shard.counters.begin(), shard.counters.end());
    }
    return out;
}

std::map<std::string, double, std::less<>>
Registry::gauges() const
{
    std::map<std::string, double, std::less<>> out;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        out.insert(shard.gauges.begin(), shard.gauges.end());
    }
    return out;
}

std::map<std::string, HistogramData, std::less<>>
Registry::histograms() const
{
    std::map<std::string, HistogramData, std::less<>> out;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        out.insert(shard.histograms.begin(), shard.histograms.end());
    }
    return out;
}

std::vector<SpanRecord>
Registry::spans() const
{
    std::lock_guard<std::mutex> lock(spansMutex_);
    return spans_;
}

} // namespace obs
} // namespace spasm
