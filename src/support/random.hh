/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All synthetic workloads are generated from explicitly seeded xoshiro256**
 * streams so that every experiment in the repository is bit-reproducible
 * across runs and machines.  SplitMix64 is used to expand a single seed
 * into the four xoshiro state words, per the reference implementations.
 */

#ifndef SPASM_SUPPORT_RANDOM_HH
#define SPASM_SUPPORT_RANDOM_HH

#include <cstdint>

namespace spasm {

/** SplitMix64 stepping function; used for seeding. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** generator.  Small, fast, and deterministic; satisfies the
 * UniformRandomBitGenerator requirements so it can also feed <random>
 * distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /** Approximate normal draw (sum of uniforms), mean 0, stddev 1. */
    double nextGaussian();

  private:
    std::uint64_t s_[4];
};

} // namespace spasm

#endif // SPASM_SUPPORT_RANDOM_HH
