/**
 * @file
 * Tracked memory budget for the pipeline's large allocations.
 *
 * The framework's big buffers — the COO entry list, the encoded word
 * stream, the simulator's per-PE partial-sum arenas — register their
 * sizes against a `MemoryBudget` before (or immediately after) being
 * materialized.  When a limit is armed and a charge would exceed it,
 * the charge is rolled back and a typed
 * `spasm::Error{BudgetExceeded}` is thrown, so one oversized job in a
 * batch campaign fails cleanly instead of OOM-killing the process.
 * With no limit (limit <= 0) the budget is a pure tracker: `peak()`
 * lands in the per-job `peak_budget_bytes` stats field either way.
 *
 * Charges and releases are atomic and thread-safe; `MemoryReservation`
 * is the RAII form for allocations with a scoped lifetime (e.g. the
 * simulator's psum buffers, released even when the run throws).
 */

#ifndef SPASM_SUPPORT_MEMORY_BUDGET_HH
#define SPASM_SUPPORT_MEMORY_BUDGET_HH

#include <atomic>
#include <cstdint>

namespace spasm {

/** Byte-accounting guard; throws Error{BudgetExceeded} over limit. */
class MemoryBudget
{
  public:
    /** @param limit_bytes Hard ceiling; <= 0 tracks without a cap. */
    explicit MemoryBudget(std::int64_t limit_bytes = 0)
        : limit_(limit_bytes)
    {
    }

    MemoryBudget(const MemoryBudget &) = delete;
    MemoryBudget &operator=(const MemoryBudget &) = delete;

    /**
     * Account @p bytes against the budget.  Throws
     * `Error{BudgetExceeded}` (after rolling the charge back) when a
     * limit is armed and would be exceeded; @p what names the
     * allocation in the diagnostic.
     */
    void charge(std::int64_t bytes, const char *what);

    /** Return @p bytes to the budget (used() never goes negative). */
    void release(std::int64_t bytes);

    std::int64_t used() const
    {
        return used_.load(std::memory_order_relaxed);
    }

    /** High-water mark of used() over the budget's lifetime. */
    std::int64_t peak() const
    {
        return peak_.load(std::memory_order_relaxed);
    }

    std::int64_t limit() const { return limit_; }

  private:
    std::int64_t limit_;
    std::atomic<std::int64_t> used_{0};
    std::atomic<std::int64_t> peak_{0};
};

/** RAII charge: released on destruction; null budget is a no-op. */
class MemoryReservation
{
  public:
    MemoryReservation() = default;

    MemoryReservation(MemoryBudget *budget, std::int64_t bytes,
                      const char *what)
        : budget_(budget), bytes_(bytes)
    {
        if (budget_ != nullptr)
            budget_->charge(bytes_, what);
    }

    MemoryReservation(MemoryReservation &&other) noexcept
        : budget_(other.budget_), bytes_(other.bytes_)
    {
        other.budget_ = nullptr;
    }

    MemoryReservation &operator=(MemoryReservation &&other) noexcept
    {
        if (this != &other) {
            releaseNow();
            budget_ = other.budget_;
            bytes_ = other.bytes_;
            other.budget_ = nullptr;
        }
        return *this;
    }

    MemoryReservation(const MemoryReservation &) = delete;
    MemoryReservation &operator=(const MemoryReservation &) = delete;

    ~MemoryReservation() { releaseNow(); }

  private:
    void releaseNow()
    {
        if (budget_ != nullptr) {
            budget_->release(bytes_);
            budget_ = nullptr;
        }
    }

    MemoryBudget *budget_ = nullptr;
    std::int64_t bytes_ = 0;
};

} // namespace spasm

#endif // SPASM_SUPPORT_MEMORY_BUDGET_HH
