/**
 * @file
 * Summary-statistics helpers used by the benchmark harness.
 */

#ifndef SPASM_SUPPORT_STATS_HH
#define SPASM_SUPPORT_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spasm {

/** Geometric mean of a list of positive values; 0 for an empty list. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 for an empty list. */
double mean(const std::vector<double> &values);

/** Minimum; 0 for an empty list. */
double minOf(const std::vector<double> &values);

/** Maximum; 0 for an empty list. */
double maxOf(const std::vector<double> &values);

/** Population standard deviation; 0 for fewer than two values. */
double stddev(const std::vector<double> &values);

/**
 * q-quantile (q in [0,1]) with linear interpolation between order
 * statistics; 0 for an empty list.  q=0.5 is the median.
 */
double percentile(const std::vector<double> &values, double q);

/**
 * Streaming accumulator for min / max / mean / geomean over a sequence
 * of positive samples, plus a bounded-memory quantile estimator: a
 * fixed-size reservoir (deterministic replacement) feeds percentile(),
 * so memory stays O(1) no matter how many samples are added.
 */
class SummaryStats
{
  public:
    /** Add one sample (must be > 0 for the geomean to be meaningful). */
    void add(double v);

    std::size_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double geomean() const;

    /**
     * Estimated q-quantile.  Exact while count() <= kReservoirCap;
     * a uniform-reservoir estimate beyond that.
     */
    double percentile(double q) const;

    static constexpr std::size_t kReservoirCap = 1024;

  private:
    std::size_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    double logSum_ = 0.0;
    std::vector<double> reservoir_;
    std::uint64_t rng_ = 0x2545f4914f6cdd1dULL; ///< deterministic
};

} // namespace spasm

#endif // SPASM_SUPPORT_STATS_HH
