#include "support/memory_budget.hh"

#include "support/error.hh"

namespace spasm {

void
MemoryBudget::charge(std::int64_t bytes, const char *what)
{
    if (bytes <= 0)
        return;
    const std::int64_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit_ > 0 && now > limit_) {
        used_.fetch_sub(bytes, std::memory_order_relaxed);
        throw Error::atInput(
            ErrorCode::BudgetExceeded, what,
            "allocation of %lld bytes would exceed the memory "
            "budget (%lld of %lld bytes in use)",
            static_cast<long long>(bytes),
            static_cast<long long>(now - bytes),
            static_cast<long long>(limit_));
    }
    std::int64_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_.compare_exchange_weak(prev, now,
                                        std::memory_order_relaxed)) {
    }
}

void
MemoryBudget::release(std::int64_t bytes)
{
    if (bytes <= 0)
        return;
    std::int64_t prev = used_.load(std::memory_order_relaxed);
    while (true) {
        const std::int64_t next = prev > bytes ? prev - bytes : 0;
        if (used_.compare_exchange_weak(prev, next,
                                        std::memory_order_relaxed))
            return;
    }
}

} // namespace spasm
