#include "support/atomic_file.hh"

#include <cstdio>
#include <fstream>

#include "support/error.hh"

#if defined(_WIN32)
#include <process.h>
#define spasm_getpid _getpid
#else
#include <unistd.h>
#define spasm_getpid getpid
#endif

namespace spasm {

void
writeFileAtomic(const std::string &path,
                const std::function<void(std::ostream &)> &producer)
{
    // PID-suffixed so concurrent processes writing the same target
    // (e.g. two bench runs sharing SPASM_JSON_DIR) cannot collide on
    // the temp name; last rename wins, each file stays complete.
    const std::string tmp =
        path + ".tmp." + std::to_string(spasm_getpid());
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
        // The open may have created an empty temp (e.g. quota hit on
        // a later write of the stream buffer); never orphan it.
        std::remove(tmp.c_str());
        throw Error::atInput(ErrorCode::Io, path,
                             "cannot open temp file '%s' for writing",
                             tmp.c_str());
    }
    try {
        producer(out);
    } catch (...) {
        out.close();
        std::remove(tmp.c_str());
        throw;
    }
    out.flush();
    const bool ok = out.good();
    out.close();
    if (!ok) {
        std::remove(tmp.c_str());
        throw Error::atInput(ErrorCode::Io, path,
                             "write to temp file '%s' failed",
                             tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw Error::atInput(ErrorCode::Io, path,
                             "cannot rename temp file '%s' over the "
                             "target", tmp.c_str());
    }
}

} // namespace spasm
