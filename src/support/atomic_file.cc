#include "support/atomic_file.hh"

#include <cstdio>
#include <fstream>

#include "support/logging.hh"

#if defined(_WIN32)
#include <process.h>
#define spasm_getpid _getpid
#else
#include <unistd.h>
#define spasm_getpid getpid
#endif

namespace spasm {

void
writeFileAtomic(const std::string &path,
                const std::function<void(std::ostream &)> &producer)
{
    // PID-suffixed so concurrent processes writing the same target
    // (e.g. two bench runs sharing SPASM_JSON_DIR) cannot collide on
    // the temp name; last rename wins, each file stays complete.
    const std::string tmp =
        path + ".tmp." + std::to_string(spasm_getpid());
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
        spasm_fatal("cannot open output file '%s'", tmp.c_str());
    try {
        producer(out);
    } catch (...) {
        out.close();
        std::remove(tmp.c_str());
        throw;
    }
    out.flush();
    const bool ok = out.good();
    out.close();
    if (!ok) {
        std::remove(tmp.c_str());
        spasm_fatal("write to '%s' failed", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        spasm_fatal("cannot rename '%s' to '%s'", tmp.c_str(),
                    path.c_str());
    }
}

} // namespace spasm
