/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to integrity-check
 * the sections of a `.spasm` container (format/serialize.hh).  The
 * algorithm matches zlib's crc32() so stored checksums can be verified
 * with standard tools.
 */

#ifndef SPASM_SUPPORT_CRC32_HH
#define SPASM_SUPPORT_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace spasm {

/** CRC-32 of @p size bytes at @p data, seeded with @p crc (pass 0 for
 *  a fresh checksum; pass a previous result to continue a stream). */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t crc = 0);

} // namespace spasm

#endif // SPASM_SUPPORT_CRC32_HH
