/**
 * @file
 * Bounded admission control for long-lived request loops.
 *
 * `spasm serve` must shed load instead of queueing unboundedly: a
 * daemon that accepts every request eventually dies of memory
 * pressure, and dies holding work it can never finish.  The
 * `AdmissionGate` makes the bound explicit — at most `maxInFlight`
 * requests hold tickets at once, and each ticket optionally carries a
 * `MemoryReservation` against a shared budget, so admission fails
 * fast on *either* axis (slots or bytes) with a typed
 * `Error{Overloaded}` the transport layer turns into an error
 * response.  Shed requests are counted; they are never silently
 * dropped.
 *
 * `close()` flips the gate into drain mode: every subsequent admit
 * sheds with an "admission closed (draining)" diagnostic while
 * already-admitted requests run to completion.  `waitIdleFor` is the
 * drain barrier — the serve loop closes the gate on SIGINT/SIGTERM,
 * waits for in-flight tickets against a deadline, then hard-cancels
 * stragglers through their request tokens.
 *
 * While the obs registry is enabled the gate publishes
 * `<prefix>.shed` (counter), `<prefix>.admitted` (counter) and
 * `<prefix>.queue_depth` (gauge, current in-flight count) so the
 * overload behavior is assertable from stats JSON.
 */

#ifndef SPASM_SUPPORT_ADMISSION_HH
#define SPASM_SUPPORT_ADMISSION_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "support/memory_budget.hh"

namespace spasm {

class AdmissionGate
{
  public:
    struct Options
    {
        /** Maximum concurrently admitted requests (clamped >= 1). */
        std::size_t maxInFlight = 8;
        /** Bytes reserved per admitted request; 0 skips the budget
         *  axis entirely. */
        std::int64_t perRequestBytes = 0;
        /** Budget the per-request bytes are reserved against; null
         *  with perRequestBytes > 0 is treated as no budget. */
        MemoryBudget *budget = nullptr;
        /** Obs metric prefix ("serve" -> serve.shed, ...). */
        std::string metricPrefix = "admission";
    };

    explicit AdmissionGate(Options options);

    AdmissionGate(const AdmissionGate &) = delete;
    AdmissionGate &operator=(const AdmissionGate &) = delete;

    /** RAII admission slot: releases the slot (and any memory
     *  reservation) on destruction and wakes drain waiters. */
    class Ticket
    {
      public:
        Ticket() = default;
        Ticket(Ticket &&other) noexcept;
        Ticket &operator=(Ticket &&other) noexcept;
        Ticket(const Ticket &) = delete;
        Ticket &operator=(const Ticket &) = delete;
        ~Ticket();

        bool valid() const { return gate_ != nullptr; }

      private:
        friend class AdmissionGate;
        Ticket(AdmissionGate *gate, MemoryReservation reservation)
            : gate_(gate), reservation_(std::move(reservation))
        {
        }

        AdmissionGate *gate_ = nullptr;
        MemoryReservation reservation_;
    };

    /**
     * Try to admit @p what (named in diagnostics).  Returns a live
     * Ticket, or throws `Error{Overloaded}` when the gate is closed,
     * all slots are taken, or the memory reservation fails.  Never
     * blocks — shedding is immediate by design.
     */
    Ticket admit(const std::string &what);

    /** Stop admitting; in-flight tickets are unaffected. */
    void close();

    bool closed() const;

    /** Currently admitted (ticket-holding) requests. */
    std::size_t inFlight() const;

    /** Requests shed since construction (all causes). */
    std::uint64_t shedCount() const;

    /** Requests admitted since construction. */
    std::uint64_t admittedCount() const;

    /**
     * Block until no tickets are outstanding or @p timeout_ms
     * elapses; returns true when idle.  timeout_ms < 0 waits
     * indefinitely.
     */
    bool waitIdleFor(std::int64_t timeout_ms);

  private:
    void releaseSlot();
    void noteShed(const char *cause);

    Options options_;
    mutable std::mutex mutex_;
    std::condition_variable idleCv_;
    std::size_t inFlight_ = 0;
    bool closed_ = false;
    std::uint64_t shed_ = 0;
    std::uint64_t admitted_ = 0;
};

} // namespace spasm

#endif // SPASM_SUPPORT_ADMISSION_HH
