#include "support/random.hh"

#include <cmath>

namespace spasm {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    // Irwin-Hall approximation: sum of 12 uniforms has stddev 1, mean 6.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += nextDouble();
    return acc - 6.0;
}

} // namespace spasm
