#include "support/admission.hh"

#include <chrono>
#include <utility>

#include "support/error.hh"
#include "support/obs.hh"

namespace spasm {

AdmissionGate::AdmissionGate(Options options)
    : options_(std::move(options))
{
    if (options_.maxInFlight < 1)
        options_.maxInFlight = 1;
}

AdmissionGate::Ticket::Ticket(Ticket &&other) noexcept
    : gate_(other.gate_), reservation_(std::move(other.reservation_))
{
    other.gate_ = nullptr;
}

AdmissionGate::Ticket &
AdmissionGate::Ticket::operator=(Ticket &&other) noexcept
{
    if (this != &other) {
        if (gate_ != nullptr)
            gate_->releaseSlot();
        gate_ = other.gate_;
        reservation_ = std::move(other.reservation_);
        other.gate_ = nullptr;
    }
    return *this;
}

AdmissionGate::Ticket::~Ticket()
{
    // The reservation member destructs after this body, so the bytes
    // are returned to the budget before any shed retry can observe a
    // freed slot but a still-charged budget only transiently.
    if (gate_ != nullptr)
        gate_->releaseSlot();
}

AdmissionGate::Ticket
AdmissionGate::admit(const std::string &what)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_) {
            ++shed_;
            noteShed("closed");
            throw Error::atInput(ErrorCode::Overloaded, what,
                                 "admission closed (draining)");
        }
        if (inFlight_ >= options_.maxInFlight) {
            ++shed_;
            noteShed("slots");
            throw Error::atInput(
                ErrorCode::Overloaded, what,
                "in-flight limit reached (%zu requests)",
                options_.maxInFlight);
        }
        ++inFlight_;
    }

    // Reserve bytes outside the gate lock: MemoryBudget is atomic and
    // a throwing charge must not hold mutex_ while unwinding.
    MemoryReservation reservation;
    if (options_.perRequestBytes > 0 && options_.budget != nullptr) {
        try {
            reservation = MemoryReservation(
                options_.budget, options_.perRequestBytes,
                "serve request admission");
        } catch (const Error &) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --inFlight_;
                ++shed_;
                noteShed("budget");
            }
            idleCv_.notify_all();
            throw Error::atInput(
                ErrorCode::Overloaded, what,
                "memory budget exhausted (%lld bytes per request)",
                static_cast<long long>(options_.perRequestBytes));
        }
    }

    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++admitted_;
        depth = inFlight_;
    }
    auto &reg = obs::Registry::global();
    if (reg.enabled()) {
        reg.add(options_.metricPrefix + ".admitted");
        reg.set(options_.metricPrefix + ".queue_depth",
                static_cast<double>(depth));
    }
    return Ticket(this, std::move(reservation));
}

void
AdmissionGate::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
}

bool
AdmissionGate::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
AdmissionGate::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inFlight_;
}

std::uint64_t
AdmissionGate::shedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shed_;
}

std::uint64_t
AdmissionGate::admittedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_;
}

bool
AdmissionGate::waitIdleFor(std::int64_t timeout_ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto idle = [this] { return inFlight_ == 0; };
    if (timeout_ms < 0) {
        idleCv_.wait(lock, idle);
        return true;
    }
    return idleCv_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms), idle);
}

void
AdmissionGate::releaseSlot()
{
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (inFlight_ > 0)
            --inFlight_;
        depth = inFlight_;
    }
    auto &reg = obs::Registry::global();
    if (reg.enabled())
        reg.set(options_.metricPrefix + ".queue_depth",
                static_cast<double>(depth));
    idleCv_.notify_all();
}

void
AdmissionGate::noteShed(const char *cause)
{
    auto &reg = obs::Registry::global();
    if (reg.enabled()) {
        reg.add(options_.metricPrefix + ".shed");
        reg.add(options_.metricPrefix + ".shed." + cause);
    }
}

} // namespace spasm
