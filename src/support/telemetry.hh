/**
 * @file
 * Live telemetry: a background sampler thread that periodically
 * snapshots the obs registry, thread-pool health, the simulator's
 * live cycle counters, campaign progress and process rusage into an
 * append-only `spasm-telemetry-v1` JSONL stream.
 *
 * Why a stream and not a file: all observability before this layer is
 * post-hoc — stats JSON, profiles and trajectory entries exist only
 * after a run completes, so a multi-hour `spasm batch` campaign is a
 * black box until it finishes or dies.  The sampler turns the same
 * registries into a durable, tail-able progress feed: `spasm tail`
 * renders it live (progress, throughput, EWMA-smoothed ETA),
 * `spasm report` summarises a finished stream (campaign timeline,
 * throughput-over-time, rate-regime shifts), and the Prometheus
 * text-exposition export (`writePrometheusText`) is the scrape
 * surface the future `spasm serve` daemon will reuse.
 *
 * Stream shape — one compact JSON object per line, discriminated by
 * "kind":
 *   {"kind":"header", schema/generator/interval/pid ...}  (first line)
 *   {"kind":"sample", seq/t_ms/rusage/pool/sim/progress ...}
 *   {"kind":"log",    ...}   (interleaved by support/logging's sink)
 *   {"kind":"end",    final totals}                       (clean stop)
 * Appends are whole-line writes flushed per sample, so a `kill -9`
 * loses at most the line in flight; `loadTelemetry` tolerates (and
 * counts) a torn final line.
 *
 * Publication side: the simulator publishes into `LiveSim` atomics at
 * a masked cadence only when `liveSimActive()` returned non-null at
 * run start, so telemetry-off runs execute the exact instruction
 * stream that produced the committed goldens.  Campaign progress
 * (`beginCampaign`/`noteJobDone`) is unconditional — a handful of
 * relaxed atomic ops per *job*, not per cycle.
 *
 * Under `--deterministic` the sampled *payloads* stay wall-clock
 * (telemetry is inherently about wall clock); only log-sink and
 * flight-recorder stamps are zeroed.  Nothing from the telemetry
 * layer ever feeds back into simulated results.
 */

#ifndef SPASM_SUPPORT_TELEMETRY_HH
#define SPASM_SUPPORT_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace spasm {

namespace obs {
class Registry;
}

namespace telemetry {

/** Schema tag on the stream's header line. */
inline constexpr const char *kTelemetrySchema = "spasm-telemetry-v1";
/** Minor 1 added the `ingest` sample section (streaming parse /
 *  spill progress); readers of minor 0 streams see zeros. */
inline constexpr int kTelemetrySchemaMinor = 1;

/**
 * Live simulator counters, published from the accelerator's timing
 * loop at a masked cadence (see hw/accelerator.cc) and read by the
 * sampler.  All relaxed atomics: samples are statistical, not
 * linearizable snapshots.
 */
struct LiveSim
{
    std::atomic<std::uint64_t> runsStarted{0};
    std::atomic<std::uint64_t> runsCompleted{0};
    /** Totals accumulated over *completed* runs. */
    std::atomic<std::uint64_t> completedCycles{0};
    std::atomic<std::uint64_t> completedWords{0};
    /** Progress of the (most recent) in-flight run. */
    std::atomic<std::uint64_t> currentCycle{0};
    std::atomic<std::uint64_t> busyPeCycles{0};
};

/**
 * The publication gate the simulator polls once per run: non-null
 * while a sampler is running, null otherwise.  Callers cache the
 * pointer for the whole run so the per-cycle cost of telemetry-off is
 * a cached null test that the masked publish branch never reaches.
 */
LiveSim *liveSimActive();

/**
 * Live streaming-ingestion counters, published by the chunked
 * MatrixMarket parser and the spill tiler while a sampler runs (same
 * gate/lifecycle as `LiveSim`).  Updated at window/flush granularity
 * from the merge thread — relaxed atomics, never per byte.
 */
struct LiveIngest
{
    std::atomic<std::uint64_t> active{0}; ///< 1 while a parse runs
    std::atomic<std::uint64_t> bytesRead{0};
    std::atomic<std::uint64_t> bytesTotal{0}; ///< 0 = unknown size
    std::atomic<std::uint64_t> lines{0};
    std::atomic<std::uint64_t> entries{0};
    std::atomic<std::uint64_t> spillBytes{0};
    std::atomic<std::uint64_t> spillFlushes{0};
};

/** Publication gate for ingest progress: non-null while a sampler is
 *  running, null otherwise (cache the pointer per parse). */
LiveIngest *liveIngestActive();

/** Campaign-level progress (batch jobs, bench workloads, chaos
 *  trials).  Unconditional and cheap: per-job, not per-cycle. */
struct ProgressSnapshot
{
    bool active = false;
    std::uint64_t total = 0; ///< 0 = unknown (chaos trials)
    std::uint64_t done = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
};

/** Mark a campaign of @p total units started (@p done_already > 0
 *  when resuming from a journal; 0 total = unknown size). */
void beginCampaign(std::uint64_t total, std::uint64_t done_already = 0);

/** Record one unit finished (ok or not). */
void noteJobDone(bool ok);

/** Mark the campaign finished (progress shows inactive). */
void endCampaign();

ProgressSnapshot progressSnapshot();

/** Sampler configuration (CLI: --telemetry, --telemetry-interval-ms). */
struct TelemetryOptions
{
    std::string path;       ///< JSONL stream destination (appended)
    int intervalMs = 250;   ///< sampling period
    bool deterministic = false; ///< zero log/flight stamps
    /** Flight-recorder dump path; default `<path>.flight.json`. */
    std::string flightPath;
};

/**
 * The background sampler.  `start` opens the stream (writing the
 * header line), arms the flight recorder + crash handlers, opens the
 * structured log sink *into the same stream*, and launches the
 * sampling thread; `stop` takes a final sample, writes the end
 * record and joins.  One sampler per process (it owns process-wide
 * registries); start/stop are lifecycle operations.
 */
class Sampler
{
  public:
    static Sampler &global();

    /** @return false (with a warning) when the stream can't open. */
    bool start(const TelemetryOptions &opts);

    void stop();

    bool running() const;

    /** Take one sample immediately (also used by tests). */
    void sampleNow();

  private:
    Sampler() = default;

    struct Impl;
    Impl *impl_ = nullptr;
};

// --- Read side ------------------------------------------------------

/** One parsed "sample" line (header/log/end lines are counted but not
 *  materialised here). */
struct TelemetrySample
{
    std::uint64_t seq = 0;
    double tMs = 0.0;
    std::uint64_t peakRssBytes = 0;
    std::uint64_t poolWorkers = 0;
    std::uint64_t simRunsStarted = 0;
    std::uint64_t simRunsCompleted = 0;
    std::uint64_t simCycles = 0;        ///< completed-run total
    std::uint64_t simCurrentCycle = 0;  ///< in-flight run progress
    bool progressActive = false;
    std::uint64_t progressTotal = 0;
    std::uint64_t progressDone = 0;
    std::uint64_t progressOk = 0;
    std::uint64_t progressFailed = 0;
    double ratePerSec = 0.0; ///< EWMA-smoothed units/s
    double etaMs = -1.0;     ///< -1 = unknown
    bool ingestActive = false;
    std::uint64_t ingestBytesRead = 0;
    std::uint64_t ingestBytesTotal = 0;
    std::uint64_t ingestLines = 0;
    std::uint64_t ingestEntries = 0;
    std::uint64_t ingestSpillBytes = 0;
    std::uint64_t ingestSpillFlushes = 0;
};

/** A loaded stream. */
struct TelemetryStream
{
    std::string generator;
    int intervalMs = 0;
    double schemaMinor = 0;
    std::vector<TelemetrySample> samples;
    std::uint64_t logLines = 0;
    bool sawHeader = false;
    bool sawEnd = false;
    /** Torn/unparseable trailing lines skipped (kill -9 artifact). */
    std::uint64_t truncatedLines = 0;
};

/** Cheap sniff: does the first line look like a telemetry header?
 *  (Lets `spasm report` dispatch without a full parse.) */
bool looksLikeTelemetry(const std::string &path);

/**
 * Parse a telemetry JSONL stream.  Every complete line must parse;
 * one torn *final* line (the kill -9 artifact) is tolerated and
 * counted.  Throws a typed Error{Parse} on anything worse.
 */
TelemetryStream loadTelemetry(const std::string &path);

/** One sample as one human line (the `tail --follow` unit). */
void renderTelemetrySample(std::ostream &os, const TelemetrySample &s);

/** `spasm tail` view: one line per sample — elapsed, progress,
 *  rate, ETA, live cycles, RSS. */
void renderTelemetry(std::ostream &os, const TelemetryStream &stream);

/** `spasm report` view: campaign timeline, throughput-over-time
 *  buckets, and rate-regime shifts. */
void renderTelemetryReport(std::ostream &os,
                           const TelemetryStream &stream);

/**
 * Prometheus text exposition (version 0.0.4) of one registry
 * snapshot: counters as `counter`, gauges as `gauge`, histograms as
 * `summary` (count/sum + p50/p90/p99 quantiles).  Metric names get a
 * `spasm_` prefix and dots become underscores.  The scrape surface
 * `spasm serve` will reuse; `--prom <path>` on simulate writes it
 * post-run.
 */
void writePrometheusText(std::ostream &os, const obs::Registry &reg);

} // namespace telemetry
} // namespace spasm

#endif // SPASM_SUPPORT_TELEMETRY_HH
