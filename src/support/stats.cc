#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace spasm {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        spasm_assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
minOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
percentile(const std::vector<double> &values, double q)
{
    if (values.empty())
        return 0.0;
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    q = std::min(1.0, std::max(0.0, q));
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void
SummaryStats::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    logSum_ += std::log(v);
    ++count_;

    // Algorithm R reservoir sampling with an xorshift PRNG: bounded
    // memory, deterministic for a given sample sequence.
    if (reservoir_.size() < kReservoirCap) {
        reservoir_.push_back(v);
        return;
    }
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    const std::uint64_t slot = rng_ % count_;
    if (slot < kReservoirCap)
        reservoir_[static_cast<std::size_t>(slot)] = v;
}

double
SummaryStats::min() const
{
    return min_;
}

double
SummaryStats::max() const
{
    return max_;
}

double
SummaryStats::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
SummaryStats::geomean() const
{
    return count_ ? std::exp(logSum_ / static_cast<double>(count_)) : 0.0;
}

double
SummaryStats::percentile(double q) const
{
    return spasm::percentile(reservoir_, q);
}

} // namespace spasm
