/**
 * @file
 * Unified observability layer: a process-wide registry of counters,
 * gauges and histograms plus scoped spans (RAII wall-clock timers with
 * parent/child nesting).
 *
 * Every layer of the pipeline publishes into the same registry — the
 * six framework stages, the schedule exploration (one span per
 * candidate config x tile size), and the cycle-level simulator — so a
 * single run can be serialized as one schema-versioned JSON stats
 * record (core/stats_json.hh) or one Chrome-trace timeline
 * (hw/trace_export.hh).
 *
 * The registry is OFF by default and all entry points are cheap
 * no-ops while disabled: `Span` construction is a single branch (no
 * clock read, no allocation) and counter/gauge/histogram updates
 * return immediately, so instrumented hot paths cost nothing unless a
 * sink (e.g. `spasm_cli --stats-json`) turns observability on.
 *
 * Naming convention (see docs/observability.md): dot-separated
 * lower_snake components, `<subsystem>.<noun>[.<cause>]`, e.g.
 * `sim.stall.value`, `framework.analysis`, `schedule.candidate`.
 *
 * Thread-safety (see docs/observability.md, "Threading model"):
 * counter/gauge/histogram updates go through name-sharded mutexes and
 * may be issued concurrently from any thread, including thread-pool
 * workers.  The span list is a single mutex-protected vector with
 * stable 1-based ids; span *nesting* (depth/parent) is tracked per
 * thread, so a span opened on a worker thread nests under whatever
 * spans that same thread has open, never under another thread's.
 * Accessors return consistent snapshots by value.  `setEnabled` and
 * `clear` are lifecycle operations: call them while no other thread
 * is publishing.
 */

#ifndef SPASM_SUPPORT_OBS_HH
#define SPASM_SUPPORT_OBS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/timer.hh"

namespace spasm {
namespace obs {

/** 1-based span handle; 0 means "no span" (registry disabled). */
using SpanId = std::size_t;

/** One completed (or still open) span. */
struct SpanRecord
{
    std::string name;
    std::uint64_t startUs = 0; ///< wall clock, µs since registry epoch
    std::uint64_t durUs = 0;   ///< 0 while the span is still open
    int depth = 0;             ///< nesting level (0 = top level)
    SpanId parent = 0;         ///< enclosing span, 0 if top level
    std::vector<std::pair<std::string, std::string>> tags;
};

/**
 * Bounded-memory value distribution: exact count/sum/min/max plus a
 * fixed-size reservoir (deterministic replacement) for percentiles.
 */
class HistogramData
{
  public:
    void observe(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /** Estimated q-quantile (q in [0,1]) from the reservoir. */
    double percentile(double q) const;

    static constexpr std::size_t kReservoirCap = 512;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> reservoir_;
    std::uint64_t rng_ = 0x9e3779b97f4a7c15ULL; ///< deterministic
};

/** The process-wide metric/span registry.  Safe for concurrent
 *  publication from multiple threads; see the file comment. */
class Registry
{
  public:
    Registry() = default;

    /** The singleton used by all instrumentation sites. */
    static Registry &global();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Turn collection on/off; enabling (re)sets the span epoch.
     *  Lifecycle operation — not for use concurrently with updates. */
    void setEnabled(bool enabled);

    /** Drop all counters, gauges, histograms and spans.  Lifecycle
     *  operation — not for use concurrently with updates. */
    void clear();

    /** Increment a monotonic counter (no-op while disabled). */
    void add(std::string_view name, std::uint64_t delta = 1);

    /** Set a point-in-time gauge value (no-op while disabled). */
    void set(std::string_view name, double value);

    /** Record one histogram sample (no-op while disabled). */
    void observe(std::string_view name, double sample);

    /**
     * Open a span nested under the calling thread's innermost open
     * span.  Returns 0 while disabled.  Prefer the RAII `Span`
     * wrapper.
     */
    SpanId beginSpan(std::string_view name);

    /** Close a span opened by beginSpan (0 is ignored). */
    void endSpan(SpanId id);

    /** Attach/overwrite a key=value tag on a span (0 is ignored). */
    void spanTag(SpanId id, std::string_view key,
                 std::string_view value);

    /**
     * Append an already-measured span (with explicit start/duration)
     * nested under the calling thread's innermost open span, and
     * return its id (0 while disabled).  Parallel stages use this to
     * buffer per-task span data and replay it in deterministic order
     * on the joining thread — the schedule sweep records identical
     * span sequences at any thread count this way.
     */
    SpanId recordSpan(
        std::string_view name, std::uint64_t start_us,
        std::uint64_t dur_us,
        std::vector<std::pair<std::string, std::string>> tags = {});

    /** Microseconds of wall clock since the registry epoch. */
    std::uint64_t nowUs() const;

    /** Sorted snapshot of all counters. */
    std::map<std::string, std::uint64_t, std::less<>> counters() const;

    /** Sorted snapshot of all gauges. */
    std::map<std::string, double, std::less<>> gauges() const;

    /** Sorted snapshot of all histograms. */
    std::map<std::string, HistogramData, std::less<>>
    histograms() const;

    /** Snapshot of all spans, in id order (ids are stable: the span
     *  with id k is element k-1). */
    std::vector<SpanRecord> spans() const;

  private:
    using Clock = MonoClock; // support/timer.hh: the shared source

    /** Metric shard: names hash onto one of these so unrelated
     *  counters don't contend on a single lock. */
    struct MetricShard
    {
        mutable std::mutex mutex;
        std::map<std::string, std::uint64_t, std::less<>> counters;
        std::map<std::string, double, std::less<>> gauges;
        std::map<std::string, HistogramData, std::less<>> histograms;
    };
    static constexpr std::size_t kMetricShards = 16;

    MetricShard &shardFor(std::string_view name);

    /** The calling thread's open-span stack for this registry. */
    std::vector<SpanId> &tlsStack();

    std::atomic<bool> enabled_{false};
    std::atomic<std::int64_t> epochNs_{
        Clock::now().time_since_epoch().count()};
    /** Bumped by clear()/setEnabled(true) so stale per-thread span
     *  stacks from a previous collection window reset lazily. */
    std::atomic<std::uint64_t> generation_{0};
    MetricShard shards_[kMetricShards];
    mutable std::mutex spansMutex_;
    std::vector<SpanRecord> spans_;
};

/**
 * RAII span: opens on construction, closes on destruction.  When the
 * registry is disabled the constructor is a single branch and every
 * method is a no-op.
 */
class Span
{
  public:
    explicit Span(std::string_view name,
                  Registry &registry = Registry::global())
        : registry_(&registry),
          id_(registry.enabled() ? registry.beginSpan(name) : 0)
    {
    }

    ~Span() { registry_->endSpan(id_); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a key=value tag (no-op while disabled). */
    void tag(std::string_view key, std::string_view value)
    {
        registry_->spanTag(id_, key, value);
    }

    /** The underlying handle (0 while disabled); valid after close. */
    SpanId id() const { return id_; }

  private:
    Registry *registry_;
    SpanId id_;
};

/** Shorthand for Registry::global().enabled(). */
inline bool
enabled()
{
    return Registry::global().enabled();
}

} // namespace obs
} // namespace spasm

#endif // SPASM_SUPPORT_OBS_HH
