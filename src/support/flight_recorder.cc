#include "support/flight_recorder.hh"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <unistd.h>

#include "support/atomic_file.hh"
#include "support/json.hh"
#include "support/timer.hh"
#include "support/version.hh"

namespace spasm {

namespace {

/** Sequential ids are stable across runs, unlike pthread handles. */
std::uint32_t
flightThreadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
copyTruncated(char *dst, std::size_t cap, std::string_view src)
{
    const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

const char *
kindName(FlightKind k)
{
    switch (k) {
      case FlightKind::Log:
        return "log";
      case FlightKind::Span:
        return "span";
      case FlightKind::Marker:
        return "marker";
    }
    return "marker";
}

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV";
      case SIGBUS:
        return "SIGBUS";
      case SIGFPE:
        return "SIGFPE";
      case SIGILL:
        return "SIGILL";
      case SIGABRT:
        return "SIGABRT";
    }
    return "signal";
}

std::terminate_handler g_prevTerminate = nullptr;

[[noreturn]] void
flightTerminateHandler()
{
    const char *what = "std::terminate";
    if (auto eptr = std::current_exception()) {
        try {
            std::rethrow_exception(eptr);
        } catch (const std::exception &e) {
            what = e.what();
        } catch (...) {
            what = "unhandled non-std exception";
        }
    }
    FlightRecorder::global().dump("terminate", what);
    if (g_prevTerminate != nullptr)
        g_prevTerminate();
    std::abort();
}

void
flightSignalHandler(int sig)
{
    // Best-effort by design (see the header): the process is already
    // dead, and writeFileAtomic's rename keeps any earlier periodic
    // dump intact if this one fails partway.
    FlightRecorder::global().dump("signal", signalName(sig));
    std::signal(sig, SIG_DFL);
    ::raise(sig);
}

} // namespace

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::arm(const std::string &dump_path, bool deterministic)
{
    {
        std::lock_guard<std::mutex> lock(metaMutex_);
        path_ = dump_path;
        lastSnapshot_.clear();
        deterministic_ = deterministic;
        epochNs_ = static_cast<std::int64_t>(monoNowNs());
    }
    crashLatched_.store(false, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
}

void
FlightRecorder::disarm()
{
    armed_.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(metaMutex_);
    path_.clear();
    lastSnapshot_.clear();
}

std::string
FlightRecorder::dumpPath() const
{
    std::lock_guard<std::mutex> lock(metaMutex_);
    return path_;
}

void
FlightRecorder::note(FlightKind kind, std::string_view level,
                     std::string_view component, std::string_view message)
{
    // Acquire pairs with arm()'s release so deterministic_/epochNs_
    // (written before arming, constant while armed) are visible.
    if (!armed_.load(std::memory_order_acquire))
        return;
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[ticket % kSlots];
    // Seqlock write: odd while mutating, even (== 2*generation) when
    // complete.  A dump that observes an odd or changing seq skips
    // the slot rather than reading torn text.
    const std::uint64_t seq = 2 * (ticket / kSlots + 1);
    slot.seq.store(seq - 1, std::memory_order_release);
    slot.ticket = ticket;
    slot.kind = kind;
    slot.thread = flightThreadId();
    slot.tMs = deterministic_
                   ? 0.0
                   : static_cast<double>(
                         static_cast<std::int64_t>(monoNowNs()) -
                         epochNs_) /
                         1e6;
    copyTruncated(slot.level, sizeof(slot.level), level);
    copyTruncated(slot.component, sizeof(slot.component), component);
    copyTruncated(slot.message, sizeof(slot.message), message);
    slot.seq.store(seq, std::memory_order_release);
}

void
FlightRecorder::setLastSnapshot(std::string_view json_line)
{
    if (!armed_.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(metaMutex_);
    lastSnapshot_.assign(json_line.data(), json_line.size());
}

bool
FlightRecorder::dump(const char *reason, const char *detail) noexcept
{
    if (!armed_.load(std::memory_order_acquire))
        return false;
    const bool crash = std::strcmp(reason, "periodic") != 0 &&
                       std::strcmp(reason, "shutdown") != 0;
    if (crash && crashLatched_.exchange(true, std::memory_order_acq_rel))
        return false; // a prior crash dump already holds the file
    if (!crash && crashLatched_.load(std::memory_order_acquire))
        return false; // never overwrite a crash dump with a periodic one
    std::string path;
    {
        std::lock_guard<std::mutex> lock(metaMutex_);
        path = path_;
    }
    if (path.empty())
        return false;
    try {
        writeFileAtomic(path, [&](std::ostream &os) {
            writeDump(os, reason, detail);
        });
    } catch (...) {
        return false;
    }
    return true;
}

void
FlightRecorder::writeDump(std::ostream &os, const char *reason,
                          const char *detail) const
{
    JsonWriter w(os, 2);
    w.beginObject();
    w.field("schema", kFlightSchema);
    w.field("schema_minor", kFlightSchemaMinor);
    w.field("generator", versionBanner());
    w.field("reason", reason);
    w.field("trigger", detail != nullptr ? detail : "");
    w.field("pid",
            deterministic_ ? std::int64_t{0}
                           : static_cast<std::int64_t>(::getpid()));
    w.field("t_ms",
            deterministic_
                ? 0.0
                : static_cast<double>(
                      static_cast<std::int64_t>(monoNowNs()) - epochNs_) /
                      1e6);
    const std::uint64_t tickets = next_.load(std::memory_order_acquire);
    w.field("events_total", tickets);
    w.key("records");
    w.beginArray();
    // Oldest first.  Under-filled rings have empty (seq==0) slots;
    // slots mid-write (odd seq, or seq changed across the read) are
    // skipped — a torn record is worse than a missing one.
    const std::uint64_t count = tickets < kSlots ? tickets : kSlots;
    const std::uint64_t first = tickets - count;
    for (std::uint64_t t = first; t < tickets; ++t) {
        const Slot &slot = slots_[t % kSlots];
        const std::uint64_t seq0 = slot.seq.load(std::memory_order_acquire);
        if (seq0 == 0 || (seq0 & 1) != 0)
            continue;
        Slot copy;
        copy.ticket = slot.ticket;
        copy.kind = slot.kind;
        copy.thread = slot.thread;
        copy.tMs = slot.tMs;
        std::memcpy(copy.level, slot.level, sizeof(copy.level));
        std::memcpy(copy.component, slot.component, sizeof(copy.component));
        std::memcpy(copy.message, slot.message, sizeof(copy.message));
        if (slot.seq.load(std::memory_order_acquire) != seq0)
            continue; // overwritten while copying
        copy.level[sizeof(copy.level) - 1] = '\0';
        copy.component[sizeof(copy.component) - 1] = '\0';
        copy.message[sizeof(copy.message) - 1] = '\0';
        w.beginObject();
        w.field("seq", copy.ticket);
        w.field("kind", kindName(copy.kind));
        w.field("level", std::string_view(copy.level));
        w.field("component", std::string_view(copy.component));
        w.field("thread", static_cast<std::uint64_t>(copy.thread));
        w.field("t_ms", copy.tMs);
        w.field("message", std::string_view(copy.message));
        w.endObject();
    }
    w.endArray();
    {
        std::lock_guard<std::mutex> lock(metaMutex_);
        if (lastSnapshot_.empty())
            w.key("last_telemetry"), w.nullValue();
        else
            w.field("last_telemetry", lastSnapshot_);
    }
    w.endObject();
    w.finish();
}

void
FlightRecorder::installCrashHandlers()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    g_prevTerminate = std::set_terminate(flightTerminateHandler);
    for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
        std::signal(sig, flightSignalHandler);
}

} // namespace spasm
