/**
 * @file
 * Minimal streaming JSON writer used by the observability exporters.
 *
 * Emits pretty-printed, deterministic JSON: keys are written in the
 * order the caller provides them, doubles are formatted with a fixed
 * "%.12g" so identical inputs produce byte-identical output, and
 * non-finite values degrade to null (JSON has no NaN/Inf).
 */

#ifndef SPASM_SUPPORT_JSON_HH
#define SPASM_SUPPORT_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spasm {

/** Stack-based JSON emitter; the caller drives structure.
 *  A negative indent selects compact single-line output (no newlines
 *  or padding) — used for JSONL journal records. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indent = 2)
        : os_(os), compact_(indent < 0),
          indent_(indent < 0 ? 0 : static_cast<std::size_t>(indent))
    {
    }

    void beginObject() { open('{'); }
    void endObject() { close('}'); }
    void beginArray() { open('['); }
    void endArray() { close(']'); }

    /** Write an object key; the next value/open call is its value. */
    void key(std::string_view k)
    {
        comma();
        writeString(k);
        os_ << (compact_ ? ":" : ": ");
        keyPending_ = true;
    }

    void value(std::string_view v)
    {
        comma();
        writeString(v);
    }
    void value(const char *v) { value(std::string_view(v)); }
    void value(const std::string &v) { value(std::string_view(v)); }

    void value(bool v)
    {
        comma();
        os_ << (v ? "true" : "false");
    }

    void value(double v)
    {
        comma();
        if (!std::isfinite(v)) {
            os_ << "null";
            return;
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        os_ << buf;
    }

    void value(std::uint64_t v)
    {
        comma();
        os_ << v;
    }
    void value(std::int64_t v)
    {
        comma();
        os_ << v;
    }
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

    /** Explicit null (the non-finite-double escape, spelled out). */
    void nullValue()
    {
        comma();
        os_ << "null";
    }

    /** Emit a pre-formatted number token verbatim — used when
     *  re-emitting parsed JSON so integer tokens survive exactly. */
    void rawNumber(std::string_view token)
    {
        comma();
        os_ << token;
    }

    /** key + scalar value in one call. */
    template <typename T>
    void field(std::string_view k, const T &v)
    {
        key(k);
        value(v);
    }

    /** Finish: emit the trailing newline (call once, at top level). */
    void finish() { os_ << '\n'; }

  private:
    struct Level
    {
        bool first = true;
    };

    void open(char c)
    {
        comma();
        os_ << c;
        levels_.push_back({});
    }

    void close(char c)
    {
        const bool empty = levels_.back().first;
        levels_.pop_back();
        if (!empty && !compact_) {
            os_ << '\n';
            pad(levels_.size());
        }
        os_ << c;
    }

    /** Separator + indentation before any value at the current level. */
    void comma()
    {
        if (keyPending_) {
            // Value directly follows its key on the same line.
            keyPending_ = false;
            return;
        }
        if (levels_.empty())
            return;
        if (!levels_.back().first)
            os_ << ',';
        levels_.back().first = false;
        if (compact_)
            return;
        os_ << '\n';
        pad(levels_.size());
    }

    void pad(std::size_t depth)
    {
        for (std::size_t i = 0; i < depth * indent_; ++i)
            os_ << ' ';
    }

    void writeString(std::string_view s)
    {
        os_ << '"';
        for (char c : s) {
            switch (c) {
              case '"':
                os_ << "\\\"";
                break;
              case '\\':
                os_ << "\\\\";
                break;
              case '\n':
                os_ << "\\n";
                break;
              case '\t':
                os_ << "\\t";
                break;
              case '\r':
                os_ << "\\r";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os_ << buf;
                } else {
                    os_ << c;
                }
            }
        }
        os_ << '"';
    }

    std::ostream &os_;
    bool compact_;
    std::size_t indent_;
    bool keyPending_ = false;
    std::vector<Level> levels_;
};

} // namespace spasm

#endif // SPASM_SUPPORT_JSON_HH
