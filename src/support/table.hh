/**
 * @file
 * Column-aligned text tables and CSV emission for the benchmark harness.
 *
 * Every bench binary prints the rows/series of the paper table or figure
 * it reproduces; TextTable keeps that output readable and diffable.
 */

#ifndef SPASM_SUPPORT_TABLE_HH
#define SPASM_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace spasm {

/** A simple column-aligned text table with an optional title. */
class TextTable
{
  public:
    /** @param title Printed above the table, underlined. */
    explicit TextTable(std::string title = "");

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append one row; must match the header width if one is set. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Convenience: format as "N.NNx" speedup notation. */
    static std::string fmtX(double v, int precision = 2);

    /** Convenience: scientific notation like the paper's nnz column. */
    static std::string fmtSci(double v, int precision = 2);

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /**
     * Additionally write the table (header + rows) as CSV to
     * `$SPASM_CSV_DIR/<stem>.csv` when that environment variable is
     * set; a no-op otherwise.  Lets the bench harness double as a
     * machine-readable figure exporter.
     */
    void exportCsv(const std::string &stem) const;

    /**
     * Write the table as a schema-versioned JSON record
     * (`"schema": "spasm-bench-v1"`, see docs/observability.md) to
     * `$SPASM_JSON_DIR/<stem>.json` when that environment variable is
     * set; a no-op otherwise.
     */
    void exportJson(const std::string &stem) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Write rows as CSV (no quoting; cells must not contain commas). */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Append one row. */
    void writeRow(const std::vector<std::string> &row);

  private:
    struct Impl;
    Impl *impl_;
};

} // namespace spasm

#endif // SPASM_SUPPORT_TABLE_HH
