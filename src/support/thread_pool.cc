#include "support/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <string>

#include "support/cancellation.hh"
#include "support/obs.hh"
#include "support/timer.hh"

namespace spasm {

/**
 * Shared state of one parallelFor: an atomic cursor handing out
 * iteration indices, a completion count, and the lowest-index
 * exception seen.  Queued by reference-counted pointer so stale help
 * requests (popped after the loop already finished) stay valid.
 */
struct ThreadPool::Loop
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *body = nullptr;
    const CancellationToken *cancel = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
    std::size_t errorIndex = std::numeric_limits<std::size_t>::max();
    /** Enqueue stamp for queue-wait accounting; 0 = uninstrumented. */
    std::uint64_t enqueueNs = 0;
    /** Set for post(): the Loop owns its closure (n == 1, body points
     *  here) so the detached task outlives the caller's frame. */
    std::function<void(std::size_t)> ownedBody;
};

ThreadPool::ThreadPool(unsigned concurrency)
{
    if (concurrency < 1)
        concurrency = 1;
    workers_.reserve(concurrency - 1);
    if (concurrency > 1)
        workerBusyNs_ = std::make_unique<std::atomic<std::uint64_t>[]>(
            concurrency - 1);
    for (unsigned i = 1; i < concurrency; ++i) {
        workerBusyNs_[i - 1].store(0, std::memory_order_relaxed);
        workers_.emplace_back([this, i] { workerMain(i - 1); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerMain(std::size_t worker_index)
{
    for (;;) {
        std::shared_ptr<Loop> loop;
        std::size_t depth = 0;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and nothing left to help with
            loop = std::move(queue_.front());
            queue_.pop_front();
            depth = queue_.size();
        }
        if (loop->enqueueNs != 0) {
            const std::uint64_t now = monoNowNs();
            const std::uint64_t wait =
                now > loop->enqueueNs ? now - loop->enqueueNs : 0;
            queueWaitCount_.fetch_add(1, std::memory_order_relaxed);
            queueWaitTotalNs_.fetch_add(wait,
                                        std::memory_order_relaxed);
            std::uint64_t prev =
                queueWaitMaxNs_.load(std::memory_order_relaxed);
            while (wait > prev &&
                   !queueWaitMaxNs_.compare_exchange_weak(
                       prev, wait, std::memory_order_relaxed))
                ;
            auto &reg = obs::Registry::global();
            reg.observe("threadpool.queue_wait_us",
                        static_cast<double>(wait) / 1000.0);
            reg.set("threadpool.queue_depth",
                    static_cast<double>(depth));
            const std::uint64_t t0 = monoNowNs();
            drain(*loop);
            workerBusyNs_[worker_index].fetch_add(
                monoNowNs() - t0, std::memory_order_relaxed);
        } else {
            drain(*loop);
        }
    }
}

void
ThreadPool::drain(Loop &loop)
{
    for (;;) {
        const std::size_t i =
            loop.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= loop.n)
            return;
        // A tripped token skips the body but still counts the index
        // as done, so the join condition is unchanged and no thread
        // blocks on skipped work.
        if (loop.cancel == nullptr || !loop.cancel->cancelled()) {
            try {
                (*loop.body)(i);
            } catch (...) {
                // Keep the exception from the lowest index; every
                // index still runs, so the winner is deterministic.
                std::lock_guard<std::mutex> lock(loop.mutex);
                if (i < loop.errorIndex) {
                    loop.errorIndex = i;
                    loop.error = std::current_exception();
                }
            }
        }
        if (loop.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            loop.n) {
            std::lock_guard<std::mutex> lock(loop.mutex);
            loop.cv.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    parallelFor(n, body, nullptr);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body,
                        const CancellationToken *cancel)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        // Serial fast path: same contract as the parallel path —
        // every iteration runs (unless the token trips, which skips
        // the rest), then the lowest-index exception is rethrown.
        std::exception_ptr error;
        for (std::size_t i = 0; i < n; ++i) {
            if (cancel != nullptr && cancel->cancelled())
                break;
            try {
                body(i);
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    auto loop = std::make_shared<Loop>();
    loop->n = n;
    loop->body = &body;
    loop->cancel = cancel;

    // One help request per worker that could usefully join in; a
    // worker that pops a request after the loop drained just returns.
    const std::size_t helpers = std::min<std::size_t>(
        workers_.size(), n - 1);
    const bool observing = obs::enabled();
    if (observing) {
        loop->enqueueNs = monoNowNs();
        loops_.fetch_add(1, std::memory_order_relaxed);
        obs::Registry::global().add("threadpool.loops");
    }
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        for (std::size_t i = 0; i < helpers; ++i)
            queue_.push_back(loop);
        depth = queue_.size();
    }
    if (observing)
        obs::Registry::global().set("threadpool.queue_depth",
                                    static_cast<double>(depth));
    if (helpers == 1)
        queueCv_.notify_one();
    else
        queueCv_.notify_all();

    // The caller drains alongside the workers (this is what makes
    // nested parallelFor deadlock-free), then waits for the stragglers
    // still executing their last claimed iteration.
    drain(*loop);
    {
        std::unique_lock<std::mutex> lock(loop->mutex);
        loop->cv.wait(lock, [&] {
            return loop->done.load(std::memory_order_acquire) ==
                   loop->n;
        });
    }
    if (loop->error)
        std::rethrow_exception(loop->error);
}

void
ThreadPool::post(std::function<void()> task)
{
    if (workers_.empty()) {
        // Serial pool: documented inline fallback.  Same "must not
        // throw" contract as the queued path — swallow here too so
        // concurrency does not change observable behavior.
        try {
            task();
        } catch (...) {
        }
        return;
    }
    auto loop = std::make_shared<Loop>();
    loop->n = 1;
    loop->ownedBody = [t = std::move(task)](std::size_t) { t(); };
    loop->body = &loop->ownedBody;
    if (obs::enabled()) {
        loop->enqueueNs = monoNowNs();
        loops_.fetch_add(1, std::memory_order_relaxed);
        obs::Registry::global().add("threadpool.loops");
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        queue_.push_back(std::move(loop));
    }
    queueCv_.notify_one();
}

ThreadPool::HealthSnapshot
ThreadPool::healthSnapshot() const
{
    HealthSnapshot snap;
    snap.workers = static_cast<unsigned>(workers_.size());
    snap.loops = loops_.load(std::memory_order_relaxed);
    snap.queueWaitCount =
        queueWaitCount_.load(std::memory_order_relaxed);
    snap.queueWaitTotalNs =
        queueWaitTotalNs_.load(std::memory_order_relaxed);
    snap.queueWaitMaxNs =
        queueWaitMaxNs_.load(std::memory_order_relaxed);
    snap.workerBusyNs.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i)
        snap.workerBusyNs.push_back(
            workerBusyNs_[i].load(std::memory_order_relaxed));
    return snap;
}

void
ThreadPool::resetHealth()
{
    loops_.store(0, std::memory_order_relaxed);
    queueWaitCount_.store(0, std::memory_order_relaxed);
    queueWaitTotalNs_.store(0, std::memory_order_relaxed);
    queueWaitMaxNs_.store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < workers_.size(); ++i)
        workerBusyNs_[i].store(0, std::memory_order_relaxed);
}

void
ThreadPool::publishHealth() const
{
    auto &reg = obs::Registry::global();
    if (!reg.enabled())
        return;
    const HealthSnapshot snap = healthSnapshot();
    reg.set("threadpool.workers",
            static_cast<double>(snap.workers));
    // Busy fraction over the registry's elapsed window: a helper that
    // spent the whole window draining loops reads 1.0.
    const double window_ns = static_cast<double>(reg.nowUs()) * 1000.0;
    for (std::size_t i = 0; i < snap.workerBusyNs.size(); ++i) {
        double frac = 0.0;
        if (window_ns > 0.0)
            frac = std::min(
                1.0, static_cast<double>(snap.workerBusyNs[i]) /
                         window_ns);
        reg.set("threadpool.worker." + std::to_string(i) +
                    ".busy_fraction",
                frac);
    }
}

namespace {

std::unique_ptr<ThreadPool> &
globalSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

std::mutex &
globalMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(globalMutex());
    auto &slot = globalSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(defaultConcurrency());
    return *slot;
}

void
ThreadPool::setGlobalConcurrency(unsigned concurrency)
{
    std::lock_guard<std::mutex> lock(globalMutex());
    auto &slot = globalSlot();
    if (slot && slot->concurrency() == std::max(1u, concurrency))
        return;
    slot.reset(); // join the old pool before replacing it
    slot = std::make_unique<ThreadPool>(concurrency);
}

unsigned
ThreadPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace spasm
