/**
 * @file
 * Bounded retry with exponential backoff and deterministic jitter.
 *
 * `runWithRetry` wraps one unit of work (a batch job attempt): typed
 * `spasm::Error`s that model *transient* failures — injected faults
 * surfacing as checksum/invariant errors, I/O hiccups — are retried up
 * to `maxAttempts` with an exponentially growing, seeded-jittered
 * delay.  Timeout, Cancelled and BudgetExceeded are never retried:
 * a deadline already spent, a cancelled campaign and a deterministic
 * over-budget allocation cannot succeed on a second try.
 *
 * Jitter is derived from splitMix64 over (seed, stream, attempt), so a
 * campaign replays the exact same delay schedule from its seed —
 * wall-clock still varies, but retry *counts* and outcomes do not.
 */

#ifndef SPASM_SUPPORT_RETRY_HH
#define SPASM_SUPPORT_RETRY_HH

#include <cstdint>
#include <utility>

#include "support/error.hh"

namespace spasm {

class CancellationToken;

/** Retry schedule for one job: attempts, backoff, seeded jitter. */
struct RetryPolicy
{
    /** Total tries including the first; 1 disables retry. */
    int maxAttempts = 1;

    /** Delay before the first retry, in milliseconds. */
    double backoffBaseMs = 1.0;

    /** Growth factor per further retry. */
    double backoffFactor = 2.0;

    /** Uniform jitter as a fraction of the delay: the sleep is
     *  delay * [1 - j, 1 + j).  0 disables jitter. */
    double jitterFraction = 0.5;

    /** Seed of the deterministic jitter stream. */
    std::uint64_t seed = 1;

    /**
     * Backoff before retry number @p attempt (1-based: the delay
     * between the first failure and the second try), jittered
     * deterministically per (@p seed, @p stream, @p attempt).
     */
    double delayMs(int attempt, std::uint64_t stream) const;
};

/** Transient errors retry; Timeout/Cancelled/BudgetExceeded do not. */
bool errorIsRetryable(const Error &e);

/**
 * Sleep @p ms, waking early (without throwing) when @p cancel trips.
 * Exposed for the batch runner's tests.
 */
void sleepWithCancel(double ms, const CancellationToken *cancel);

/**
 * Run `fn(attempt)` (attempt is 0-based) until it returns, a
 * non-retryable Error escapes, or maxAttempts is exhausted — the last
 * failure is rethrown.  @p stream disambiguates jitter between jobs
 * sharing a policy; @p attempts_out (optional) receives the number of
 * attempts actually made.
 */
template <typename Fn>
auto
runWithRetry(const RetryPolicy &policy, std::uint64_t stream,
             const CancellationToken *cancel, Fn &&fn,
             int *attempts_out = nullptr)
    -> decltype(fn(0))
{
    const int max_attempts =
        policy.maxAttempts < 1 ? 1 : policy.maxAttempts;
    for (int attempt = 0;; ++attempt) {
        if (attempts_out != nullptr)
            *attempts_out = attempt + 1;
        try {
            return fn(attempt);
        } catch (const Error &e) {
            if (!errorIsRetryable(e) ||
                attempt + 1 >= max_attempts)
                throw;
            sleepWithCancel(policy.delayMs(attempt + 1, stream),
                            cancel);
        }
    }
}

} // namespace spasm

#endif // SPASM_SUPPORT_RETRY_HH
