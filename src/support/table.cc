#include "support/table.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/atomic_file.hh"
#include "support/error.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace spasm {

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size()) {
        spasm_panic("row width %zu does not match header width %zu",
                    row.size(), header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::fmtX(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

std::string
TextTable::fmtSci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &row : rows_)
        grow(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size()) {
                os << std::string(widths[i] - row[i].size() + 2, ' ');
            }
        }
        os << '\n';
    };

    if (!title_.empty()) {
        os << title_ << '\n'
           << std::string(title_.size(), '=') << '\n';
    }
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

void
TextTable::exportCsv(const std::string &stem) const
{
    const char *dir = std::getenv("SPASM_CSV_DIR");
    if (!dir)
        return;
    const std::string path = std::string(dir) + "/" + stem + ".csv";
    // Bench binaries have no top-level Error handler; turn an I/O
    // failure of the export sink into the classic fatal exit.
    try {
        writeFileAtomic(path, [&](std::ostream &out) {
        auto emit = [&](const std::vector<std::string> &row) {
            for (std::size_t i = 0; i < row.size(); ++i) {
                out << row[i];
                if (i + 1 < row.size())
                    out << ',';
            }
            out << '\n';
        };
        if (!header_.empty())
            emit(header_);
        for (const auto &row : rows_)
            emit(row);
        });
    } catch (const Error &e) {
        spasm_fatal("%s", e.what());
    }
}

void
TextTable::exportJson(const std::string &stem) const
{
    const char *dir = std::getenv("SPASM_JSON_DIR");
    if (!dir)
        return;
    const std::string path = std::string(dir) + "/" + stem + ".json";
    // Atomic (temp + rename): a killed bench run can't leave a
    // truncated spasm-bench-v1 file for `spasm compare` to choke on.
    try {
        writeFileAtomic(path, [&](std::ostream &out) {
        JsonWriter json(out);
        json.beginObject();
        json.field("schema", "spasm-bench-v1");
        json.field("experiment", stem);
        json.field("title", title_);
        json.key("columns");
        json.beginArray();
        for (const auto &h : header_)
            json.value(h);
        json.endArray();
        json.key("rows");
        json.beginArray();
        for (const auto &row : rows_) {
            json.beginArray();
            for (const auto &cell : row)
                json.value(cell);
            json.endArray();
        }
        json.endArray();
        json.endObject();
        json.finish();
        });
    } catch (const Error &e) {
        spasm_fatal("%s", e.what());
    }
}

struct CsvWriter::Impl
{
    std::ofstream out;
};

CsvWriter::CsvWriter(const std::string &path)
    : impl_(new Impl)
{
    impl_->out.open(path);
    if (!impl_->out)
        spasm_fatal("cannot open CSV output file '%s'", path.c_str());
}

CsvWriter::~CsvWriter()
{
    delete impl_;
}

void
CsvWriter::writeRow(const std::vector<std::string> &row)
{
    for (std::size_t i = 0; i < row.size(); ++i) {
        impl_->out << row[i];
        if (i + 1 < row.size())
            impl_->out << ',';
    }
    impl_->out << '\n';
}

} // namespace spasm
