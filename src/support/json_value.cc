#include "support/json_value.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "support/json.hh"
#include "support/logging.hh"

namespace spasm {

double
JsonValue::asNumber() const
{
    if (kind == Kind::Number)
        return number;
    if (kind == Kind::Null)
        return std::numeric_limits<double>::quiet_NaN();
    spasm_panic("JsonValue::asNumber on non-number (kind %d)",
                static_cast<int>(kind));
}

bool
JsonValue::isIntegral() const
{
    if (kind != Kind::Number || raw.empty())
        return false;
    for (char c : raw) {
        if (c == '.' || c == 'e' || c == 'E')
            return false;
    }
    return true;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &kv : object) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        spasm_fatal("JSON object has no member '%s'", key.c_str());
    return *v;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return (v != nullptr && v->isString()) ? v->string : fallback;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return (v != nullptr && v->isNumber()) ? v->number : fallback;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool parse(JsonValue &out, std::string *error)
    {
        try {
            out = parseValue();
            skipWs();
            if (pos_ != text_.size())
                fail("trailing content after document");
        } catch (const std::runtime_error &e) {
            if (error != nullptr)
                *error = e.what();
            out = JsonValue{};
            return false;
        }
        if (error != nullptr)
            error->clear();
        return true;
    }

  private:
    [[noreturn]] void fail(const std::string &why)
    {
        // Report 1-based line/column — file diagnostics beat offsets.
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        std::ostringstream os;
        os << "line " << line << " col " << col << ": " << why;
        throw std::runtime_error(os.str());
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = parseString();
            return v;
        }
        if (literal("true")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (literal("false")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            return v;
        }
        if (literal("null"))
            return {};
        return parseNumber();
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            peek();
            std::string key = parseString();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parseString()
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            fail("expected string");
        ++pos_;
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The writer only escapes control characters; decode
                // the BMP code point as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail(std::string("bad escape '\\") + e + "'");
            }
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return out;
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (digits && pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            eatDigits();
        }
        if (!digits)
            fail("expected a value");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.raw = text_.substr(start, pos_ - start);
        v.number = std::strtod(v.raw.c_str(), nullptr);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text, std::string *error)
{
    JsonValue out;
    Parser(text).parse(out, error);
    return out;
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        spasm_fatal("cannot open JSON file '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    JsonValue v = parseJson(buf.str(), &error);
    if (!error.empty())
        spasm_fatal("%s: %s", path.c_str(), error.c_str());
    return v;
}

void
writeJson(JsonWriter &w, const JsonValue &v)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        w.nullValue();
        break;
      case JsonValue::Kind::Bool:
        w.value(v.boolean);
        break;
      case JsonValue::Kind::Number:
        if (!v.raw.empty())
            w.rawNumber(v.raw);
        else
            w.value(v.number);
        break;
      case JsonValue::Kind::String:
        w.value(v.string);
        break;
      case JsonValue::Kind::Array:
        w.beginArray();
        for (const JsonValue &e : v.array)
            writeJson(w, e);
        w.endArray();
        break;
      case JsonValue::Kind::Object:
        w.beginObject();
        for (const auto &kv : v.object) {
            w.key(kv.first);
            writeJson(w, kv.second);
        }
        w.endObject();
        break;
    }
}

} // namespace spasm
