/**
 * @file
 * Recoverable typed errors for malformed user input.
 *
 * `spasm_fatal` (support/logging.hh) terminates the process, which is
 * the right behavior for a CLI hitting an unusable configuration but
 * the wrong one for a library: a server embedding the reader must be
 * able to reject one corrupt `.spasm` upload and keep serving.  The
 * input-parsing layers (format/serialize, sparse/matrix_market) throw
 * `spasm::Error` instead — a typed exception carrying a machine-
 * checkable code plus the byte or line offset where the input went
 * wrong — and callers decide whether to recover, degrade, or exit.
 *
 * `spasm_cli` catches Error at top level and exits 1 with the one-line
 * diagnostic; `spasm chaos` counts every Error as a *detected* fault.
 */

#ifndef SPASM_SUPPORT_ERROR_HH
#define SPASM_SUPPORT_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace spasm {

/** Machine-checkable classification of a recoverable input error. */
enum class ErrorCode
{
    Io,               ///< cannot open / read / write the file
    Truncated,        ///< input ended before the declared content
    BadMagic,         ///< not a .spasm file at all
    BadVersion,       ///< container version this build cannot read
    ChecksumMismatch, ///< section CRC32 does not match the payload
    CorruptHeader,    ///< structurally impossible header field
    LimitExceeded,    ///< declared size beyond the allocation caps
    Parse,            ///< malformed text input (MatrixMarket)
    Invariant,        ///< decoded data violates a format invariant
    Timeout,          ///< a deadline expired (support/cancellation)
    Cancelled,        ///< work cancelled cooperatively
    BudgetExceeded,   ///< tracked memory budget would be exceeded
    Overloaded,       ///< admission gate full; request shed (serve)
};

/** Stable lower-kebab name for an ErrorCode (JSON reports, tests). */
const char *errorCodeName(ErrorCode code);

/**
 * A recoverable input error: code + human-readable one-line message +
 * the position in the input that triggered it.  `what()` returns the
 * fully formatted diagnostic, e.g.
 *   "m.spasm: byte 132: section 'TIL' checksum mismatch
 *    (stored 0x1234abcd, computed 0x9e00ff11) [checksum-mismatch]"
 *   "m.mtx:17: malformed entry line 'x y 1.0' [parse]"
 */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, std::string formatted_message,
          std::int64_t byte_offset = -1, std::int64_t line = -1);

    ErrorCode code() const { return code_; }

    /** Byte offset into the input, or -1 when not applicable. */
    std::int64_t byteOffset() const { return byteOffset_; }

    /** 1-based line number, or -1 when not applicable. */
    std::int64_t line() const { return line_; }

    /** Build an error with printf-style formatting.  The rendered
     *  message is prefixed with "<name>: " ("<name>:<line>: " for
     *  line errors, "<name>: byte <off>: " for byte errors) and
     *  suffixed with " [<code-name>]". */
    [[gnu::format(printf, 3, 4)]] static Error
    atInput(ErrorCode code, const std::string &name, const char *fmt,
            ...);
    [[gnu::format(printf, 4, 5)]] static Error
    atByte(ErrorCode code, const std::string &name,
           std::int64_t byte_offset, const char *fmt, ...);
    [[gnu::format(printf, 4, 5)]] static Error
    atLine(ErrorCode code, const std::string &name, std::int64_t line,
           const char *fmt, ...);

  private:
    ErrorCode code_;
    std::int64_t byteOffset_;
    std::int64_t line_;
};

} // namespace spasm

#endif // SPASM_SUPPORT_ERROR_HH
