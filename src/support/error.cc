#include "support/error.hh"

#include <cstdarg>
#include <cstdio>

namespace spasm {

namespace {

std::string
vformat(const char *fmt, va_list args)
{
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    return buf;
}

std::string
render(ErrorCode code, const std::string &name,
       std::int64_t byte_offset, std::int64_t line,
       const std::string &body)
{
    std::string out = name;
    if (line >= 0)
        out += ":" + std::to_string(line);
    else if (byte_offset >= 0)
        out += ": byte " + std::to_string(byte_offset);
    out += ": " + body + " [" + errorCodeName(code) + "]";
    return out;
}

} // namespace

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Io:
        return "io";
      case ErrorCode::Truncated:
        return "truncated";
      case ErrorCode::BadMagic:
        return "bad-magic";
      case ErrorCode::BadVersion:
        return "bad-version";
      case ErrorCode::ChecksumMismatch:
        return "checksum-mismatch";
      case ErrorCode::CorruptHeader:
        return "corrupt-header";
      case ErrorCode::LimitExceeded:
        return "limit-exceeded";
      case ErrorCode::Parse:
        return "parse";
      case ErrorCode::Invariant:
        return "invariant";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::Cancelled:
        return "cancelled";
      case ErrorCode::BudgetExceeded:
        return "budget-exceeded";
      case ErrorCode::Overloaded:
        return "overloaded";
    }
    return "?";
}

Error::Error(ErrorCode code, std::string formatted_message,
             std::int64_t byte_offset, std::int64_t line)
    : std::runtime_error(std::move(formatted_message)), code_(code),
      byteOffset_(byte_offset), line_(line)
{
}

Error
Error::atInput(ErrorCode code, const std::string &name,
               const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    const std::string body = vformat(fmt, args);
    va_end(args);
    return Error(code, render(code, name, -1, -1, body));
}

Error
Error::atByte(ErrorCode code, const std::string &name,
              std::int64_t byte_offset, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    const std::string body = vformat(fmt, args);
    va_end(args);
    return Error(code, render(code, name, byte_offset, -1, body),
                 byte_offset);
}

Error
Error::atLine(ErrorCode code, const std::string &name,
              std::int64_t line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    const std::string body = vformat(fmt, args);
    va_end(args);
    return Error(code, render(code, name, -1, line, body), -1, line);
}

} // namespace spasm
