/**
 * @file
 * Wall-clock timing for the preprocessing-cost experiments (Table VIII).
 */

#ifndef SPASM_SUPPORT_TIMER_HH
#define SPASM_SUPPORT_TIMER_HH

#include <chrono>

namespace spasm {

/** Simple wall-clock stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed time in milliseconds since construction or reset(). */
    double
    elapsedMs() const
    {
        const auto d = Clock::now() - start_;
        return std::chrono::duration<double, std::milli>(d).count();
    }

    /** Elapsed time in seconds. */
    double elapsedSec() const { return elapsedMs() / 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace spasm

#endif // SPASM_SUPPORT_TIMER_HH
