/**
 * @file
 * The repo's single monotonic clock source plus a wall-clock
 * stopwatch (preprocessing-cost experiments, Table VIII).
 *
 * Every wall-clock measurement — obs spans, cancellation deadlines,
 * retry backoff, the self-profiler (src/prof) and the bench
 * trajectory — reads `MonoClock` through these helpers, so timings
 * from different layers are directly comparable and a future clock
 * swap happens in exactly one place.
 */

#ifndef SPASM_SUPPORT_TIMER_HH
#define SPASM_SUPPORT_TIMER_HH

#include <chrono>
#include <cstdint>

namespace spasm {

/** The one monotonic clock all wall-clock timing uses. */
using MonoClock = std::chrono::steady_clock;

/** Current monotonic time point. */
inline MonoClock::time_point
monoNow()
{
    return MonoClock::now();
}

/** Monotonic nanoseconds since the (arbitrary) clock epoch. */
inline std::uint64_t
monoNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            MonoClock::now().time_since_epoch())
            .count());
}

/** Milliseconds elapsed since @p t0. */
inline double
msSince(MonoClock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(monoNow() - t0)
        .count();
}

/** Simple wall-clock stopwatch on MonoClock. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = monoNow(); }

    /** Elapsed time in milliseconds since construction or reset(). */
    double elapsedMs() const { return msSince(start_); }

    /** Elapsed time in seconds. */
    double elapsedSec() const { return elapsedMs() / 1e3; }

  private:
    MonoClock::time_point start_;
};

} // namespace spasm

#endif // SPASM_SUPPORT_TIMER_HH
