/**
 * @file
 * Build provenance: git revision, compiler and build type, captured
 * at CMake configure time (src/support/version.cc.in).  Stamped into
 * every `spasm-stats-v1` record so `spasm compare` can warn when a
 * baseline and a candidate came from incomparable builds, and printed
 * by `spasm --version`.
 *
 * The values are frozen when CMake configures; an incremental build
 * on top of new commits keeps the old stamp until the next configure
 * (CI always configures fresh, so its stamps are exact).
 */

#ifndef SPASM_SUPPORT_VERSION_HH
#define SPASM_SUPPORT_VERSION_HH

namespace spasm {

/** `git describe --always --dirty` of the source tree ("unknown"
 *  when not built from a git checkout). */
const char *gitDescribe();

/** Compiler id and version, e.g. "GNU 13.2.0". */
const char *compilerId();

/** CMake build type, e.g. "Release". */
const char *buildType();

/** One-line "spasm <git> (<build type>, <compiler>)" banner. */
const char *versionBanner();

} // namespace spasm

#endif // SPASM_SUPPORT_VERSION_HH
