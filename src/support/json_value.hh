/**
 * @file
 * Minimal JSON document model and recursive-descent parser — the read
 * side of support/json.hh's writer.  The regression harness
 * (src/report) uses it to load `spasm-stats-v1`/`spasm-bench-v1`
 * files back into memory for comparison and attribution.
 *
 * Numbers keep their source text alongside the parsed double so the
 * diff layer can compare integral metrics exactly (no binary-decimal
 * round trip) and only fall back to floating-point tolerance for
 * genuinely fractional values.  `null` parses to a NaN-valued number
 * when read through asNumber(), matching the writer's policy of
 * emitting `null` for non-finite doubles.
 */

#ifndef SPASM_SUPPORT_JSON_VALUE_HH
#define SPASM_SUPPORT_JSON_VALUE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spasm {

class JsonWriter;

/** One parsed JSON value; objects preserve key order. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string raw;    ///< number: exact source token
    std::string string; ///< string payload
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Number value; NaN for null (the writer's non-finite escape). */
    double asNumber() const;

    /** True when this is a number whose token is a pure integer
     *  literal (no '.', 'e' or 'E'), e.g. a cycle or stall count. */
    bool isIntegral() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Object member lookup that fatal()s when the key is missing. */
    const JsonValue &at(const std::string &key) const;

    /** String member with a default when absent / not a string. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback = "") const;

    /** Number member with a default when absent / not a number. */
    double numberOr(const std::string &key, double fallback) const;
};

/**
 * Parse one JSON document.  On malformed input, returns a Null value
 * and fills @p error with a position-tagged diagnostic; on success
 * @p error is cleared.
 */
JsonValue parseJson(const std::string &text, std::string *error);

/** Parse the JSON file at @p path; fatal() on I/O or parse errors. */
JsonValue parseJsonFile(const std::string &path);

/**
 * Re-emit @p v through @p w (which controls pretty vs compact form).
 * Numbers are written from their exact source token when available,
 * so a parse -> write round trip preserves every digit — the batch
 * runner relies on this to make a journal-replayed merged record
 * byte-identical to one built in-process.
 */
void writeJson(JsonWriter &w, const JsonValue &v);

} // namespace spasm

#endif // SPASM_SUPPORT_JSON_VALUE_HH
