/**
 * @file
 * Cooperative cancellation and deadlines for long-running work.
 *
 * A `CancellationToken` is a shared flag the framework pipeline, the
 * schedule exploration and the cycle-level simulator poll at natural
 * boundaries (stage start, tile-size candidate, every ~1k simulated
 * cycles).  Tripping it — explicitly via cancel(), by an expired
 * deadline, by a watched POSIX signal flag, or transitively through a
 * parent token — makes the next poll throw a typed
 * `spasm::Error{Timeout|Cancelled}`; work is never hard-aborted, so a
 * batch campaign can record the outcome, keep sibling jobs running and
 * stay resumable.
 *
 * Tokens form a one-level tree: a per-job token with its own deadline
 * links to the campaign token, so SIGINT cancels every in-flight job
 * while each job's deadline only kills that job.
 *
 * Configuration (setDeadline / watchSignalFlag / the parent link) must
 * happen before the token is shared; after that, cancel() and all
 * queries are safe from any thread.
 */

#ifndef SPASM_SUPPORT_CANCELLATION_HH
#define SPASM_SUPPORT_CANCELLATION_HH

#include <atomic>
#include <csignal>

#include "support/timer.hh"

namespace spasm {

/** Why a token tripped; None while still live. */
enum class CancelReason
{
    None,
    Cancelled, ///< explicit cancel() / signal / parent trip
    Timeout,   ///< the deadline passed
};

/** Cooperative cancellation flag with an optional deadline. */
class CancellationToken
{
  public:
    CancellationToken() = default;

    /** A child token: trips when @p parent trips (or on its own
     *  deadline/cancel).  @p parent must outlive this token. */
    explicit CancellationToken(const CancellationToken *parent)
        : parent_(parent)
    {
    }

    /** Trip the token; idempotent, safe from any thread (including a
     *  different one than the workers polling it). */
    void cancel() const { latch(CancelReason::Cancelled); }

    /** Arm a deadline @p ms_from_now milliseconds in the future
     *  (steady clock).  Values <= 0 trip on the next poll. */
    void setDeadline(double ms_from_now);

    bool hasDeadline() const { return hasDeadline_; }

    /** The deadline originally armed, in ms (0 when none). */
    double deadlineMs() const { return deadlineMs_; }

    /** Also trip when `*flag != 0` — the batch runner points this at
     *  its `volatile sig_atomic_t` SIGINT/SIGTERM flag so a signal
     *  cancels cooperatively without async-signal-unsafe calls. */
    void watchSignalFlag(const volatile std::sig_atomic_t *flag)
    {
        signalFlag_ = flag;
    }

    /** Poll: true once tripped (latches the reason on first
     *  observation of an expired deadline / signal / parent trip). */
    bool cancelled() const;

    CancelReason reason() const
    {
        return static_cast<CancelReason>(
            reason_.load(std::memory_order_acquire));
    }

    /**
     * Poll-and-throw: no-op while live, else throws
     * `Error{Timeout}` / `Error{Cancelled}` with @p where (a stage or
     * job name) in the diagnostic.
     */
    void throwIfCancelled(const char *where) const;

  private:
    /** First reason wins; later trips keep the original cause. */
    void latch(CancelReason r) const
    {
        int expected = 0;
        reason_.compare_exchange_strong(expected,
                                        static_cast<int>(r),
                                        std::memory_order_acq_rel);
    }

    const CancellationToken *parent_ = nullptr;
    const volatile std::sig_atomic_t *signalFlag_ = nullptr;
    mutable std::atomic<int> reason_{0};
    bool hasDeadline_ = false;
    double deadlineMs_ = 0.0;
    MonoClock::time_point deadline_{};
};

/**
 * Amortized poll helper for cycle-granular loops (the simulator).
 *
 * A tight loop cannot afford a clock read per iteration, so it polls
 * on a power-of-two cycle mask (`poll`).  A loop that *fast-forwards*
 * — jumping the cycle counter over a stretch of provably-idle cycles
 * — can jump straight over every masked poll point, delaying a
 * Timeout arbitrarily past its deadline; such jumps must call
 * `pollNow` instead, so each jump is a poll point of its own and a
 * deadline fires no later than it would have cycle-by-cycle.
 *
 * A null token makes both calls a single pointer test, keeping the
 * detached hot loop branch-identical to a build without the feature.
 */
class CyclePoller
{
  public:
    explicit CyclePoller(const CancellationToken *token,
                         std::uint32_t period_mask = 1023)
        : token_(token), mask_(period_mask)
    {
    }

    /** Masked poll: checks the token every (mask + 1) cycles. */
    void poll(std::uint64_t cycle, const char *where) const
    {
        if (token_ != nullptr && (cycle & mask_) == 0)
            token_->throwIfCancelled(where);
    }

    /** Unconditional poll — required on every fast-forward jump. */
    void pollNow(const char *where) const
    {
        if (token_ != nullptr)
            token_->throwIfCancelled(where);
    }

  private:
    const CancellationToken *token_;
    std::uint32_t mask_;
};

} // namespace spasm

#endif // SPASM_SUPPORT_CANCELLATION_HH
