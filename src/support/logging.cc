#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "support/flight_recorder.hh"
#include "support/timer.hh"

namespace spasm {

namespace {

bool inform_enabled = true;

/** Sequential per-process thread ids: stable, small, deterministic
 *  in single-threaded runs (main thread is always 0). */
std::uint32_t
logThreadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

// --- JSONL sink -----------------------------------------------------
// The hot disabled path is one relaxed atomic load; everything else
// (open/close, the per-record append) is mutex-serialised — logging
// is a cold path by design.

std::atomic<FILE *> g_sink{nullptr};
std::mutex g_sink_mutex;
bool g_sink_deterministic = false;
std::int64_t g_sink_epoch_ns = 0;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
    }
    return "info";
}

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s != '\0'; ++s) {
        const char c = *s;
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
sinkRecord(LogLevel level, const char *component, const char *msg)
{
    FILE *sink = g_sink.load(std::memory_order_acquire);
    if (sink == nullptr)
        return;
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink.load(std::memory_order_relaxed);
    if (sink == nullptr)
        return; // closed while we waited on the lock
    const double t_ms =
        g_sink_deterministic
            ? 0.0
            : static_cast<double>(static_cast<std::int64_t>(monoNowNs()) -
                                  g_sink_epoch_ns) /
                  1e6;
    const std::uint32_t thread =
        g_sink_deterministic ? 0u : logThreadId();
    std::string line;
    line.reserve(128 + std::strlen(msg));
    char head[128];
    std::snprintf(head, sizeof(head),
                  "{\"kind\":\"log\",\"t_ms\":%.3f,\"thread\":%u,"
                  "\"level\":\"%s\",\"component\":\"",
                  t_ms, thread, levelName(level));
    line += head;
    appendEscaped(line, component);
    line += "\",\"msg\":\"";
    appendEscaped(line, msg);
    line += "\"}\n";
    // One fwrite per complete line + flush: a killed process loses at
    // most the record in flight, never tears an earlier one.
    std::fwrite(line.data(), 1, line.size(), sink);
    std::fflush(sink);
}

/** Render to stderr + sink + flight ring.  @p msg is pre-formatted. */
void
logLine(LogLevel level, const char *component, const char *msg)
{
    if (level != LogLevel::Debug &&
        (level != LogLevel::Info || inform_enabled)) {
        std::fflush(stdout);
        const char *prefix = level == LogLevel::Error ? "spasm: error"
                             : level == LogLevel::Warn ? "warn"
                                                       : "info";
        std::fprintf(stderr, "%s: %s\n", prefix, msg);
        std::fflush(stderr);
    }
    sinkRecord(level, component, msg);
    FlightRecorder::global().note(FlightKind::Log, levelName(level),
                                  component, msg);
}

void
vlogLine(LogLevel level, const char *component, const char *fmt,
         va_list args)
{
    char msg[1024];
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    logLine(level, component, msg);
}

/** The terminating channels keep their file:line stderr shape. */
void
vreport(const char *tag, const char *file, int line, const char *fmt,
        va_list args)
{
    char msg[1024];
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    std::fflush(stdout);
    if (file) {
        std::fprintf(stderr, "%s: %s:%d: %s\n", tag, file, line, msg);
    } else {
        std::fprintf(stderr, "%s: %s\n", tag, msg);
    }
    std::fflush(stderr);
    sinkRecord(LogLevel::Error, tag, msg);
    FlightRecorder::global().note(FlightKind::Log, tag, "general", msg);
    // A terminating tag is a death we can observe: persist the flight
    // ring now, with the diagnostic as the trigger.  (abort() comes
    // after; the crash latch makes any SIGABRT-handler dump a no-op.)
    if (std::strcmp(tag, "panic") == 0)
        FlightRecorder::global().dump("panic", msg);
    else if (std::strcmp(tag, "fatal") == 0)
        FlightRecorder::global().dump("fatal", msg);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogLine(LogLevel::Warn, "general", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    // Suppressed informs skip the sink too: a silenced bench run
    // should leave a quiet stream, not a secretly chatty one.
    if (!inform_enabled)
        return;
    va_list args;
    va_start(args, fmt);
    vlogLine(LogLevel::Info, "general", fmt, args);
    va_end(args);
}

void
logWarn(const char *component, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogLine(LogLevel::Warn, component, fmt, args);
    va_end(args);
}

void
logInform(const char *component, const char *fmt, ...)
{
    if (!inform_enabled)
        return;
    va_list args;
    va_start(args, fmt);
    vlogLine(LogLevel::Info, component, fmt, args);
    va_end(args);
}

void
logError(const char *component, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogLine(LogLevel::Error, component, fmt, args);
    va_end(args);
}

void
logDebug(const char *component, const char *fmt, ...)
{
    // Free when disabled: one relaxed load, no formatting.
    if (g_sink.load(std::memory_order_relaxed) == nullptr &&
        !FlightRecorder::global().armed())
        return;
    va_list args;
    va_start(args, fmt);
    vlogLine(LogLevel::Debug, component, fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    inform_enabled = enabled;
}

bool
informEnabled()
{
    return inform_enabled;
}

void
openLogSink(const std::string &path, bool deterministic)
{
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    FILE *old = g_sink.exchange(nullptr, std::memory_order_acq_rel);
    if (old != nullptr)
        std::fclose(old);
    FILE *f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
        std::fprintf(stderr, "warn: cannot open log sink '%s'\n",
                     path.c_str());
        return;
    }
    g_sink_deterministic = deterministic;
    g_sink_epoch_ns = static_cast<std::int64_t>(monoNowNs());
    g_sink.store(f, std::memory_order_release);
}

void
closeLogSink()
{
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    FILE *old = g_sink.exchange(nullptr, std::memory_order_acq_rel);
    if (old != nullptr) {
        std::fflush(old);
        std::fclose(old);
    }
}

bool
logSinkOpen()
{
    return g_sink.load(std::memory_order_acquire) != nullptr;
}

} // namespace spasm
