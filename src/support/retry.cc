#include "support/retry.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/cancellation.hh"
#include "support/random.hh"
#include "support/timer.hh"

namespace spasm {

double
RetryPolicy::delayMs(int attempt, std::uint64_t stream) const
{
    if (attempt < 1 || backoffBaseMs <= 0.0)
        return 0.0;
    double delay = backoffBaseMs;
    for (int i = 1; i < attempt; ++i)
        delay *= backoffFactor;
    if (jitterFraction > 0.0) {
        std::uint64_t state = seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
            (static_cast<std::uint64_t>(attempt) << 32);
        const double u = static_cast<double>(splitMix64(state) >> 11) *
            (1.0 / 9007199254740992.0); // [0, 1)
        delay *= 1.0 + jitterFraction * (2.0 * u - 1.0);
    }
    return std::max(delay, 0.0);
}

bool
errorIsRetryable(const Error &e)
{
    switch (e.code()) {
      case ErrorCode::Timeout:
      case ErrorCode::Cancelled:
      case ErrorCode::BudgetExceeded:
        return false;
      default:
        return true;
    }
}

void
sleepWithCancel(double ms, const CancellationToken *cancel)
{
    const auto until = monoNow() +
        std::chrono::duration_cast<MonoClock::duration>(
            std::chrono::duration<double, std::milli>(
                std::max(ms, 0.0)));
    // Short slices keep a cancelled campaign from idling in backoff.
    while (monoNow() < until) {
        if (cancel != nullptr && cancel->cancelled())
            return;
        const auto slice = std::min<MonoClock::duration>(
            until - monoNow(),
            std::chrono::milliseconds(5));
        std::this_thread::sleep_for(slice);
    }
}

} // namespace spasm
