#include "support/resource_usage.hh"

#if defined(__unix__) || defined(__APPLE__)
#define SPASM_HAVE_GETRUSAGE 1
#include <sys/resource.h>
#endif

namespace spasm {

ResourceUsage
currentResourceUsage()
{
    ResourceUsage out;
#if defined(SPASM_HAVE_GETRUSAGE)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
        // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
        out.peakRssBytes = static_cast<std::uint64_t>(ru.ru_maxrss);
#else
        out.peakRssBytes =
            static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
#endif
        out.minorFaults = static_cast<std::uint64_t>(ru.ru_minflt);
        out.majorFaults = static_cast<std::uint64_t>(ru.ru_majflt);
    }
#endif
    return out;
}

} // namespace spasm
