#include "support/telemetry.hh"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "support/error.hh"
#include "support/flight_recorder.hh"
#include "support/json.hh"
#include "support/json_value.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/resource_usage.hh"
#include "support/thread_pool.hh"
#include "support/timer.hh"
#include "support/version.hh"

namespace spasm {
namespace telemetry {

namespace {

// --- Live simulator counters ---------------------------------------

LiveSim g_live_sim;
LiveIngest g_live_ingest;
std::atomic<bool> g_live_active{false};

// --- Campaign progress ----------------------------------------------
// Unconditional (no gate): a handful of relaxed atomic ops per job.

std::atomic<bool> g_prog_active{false};
std::atomic<std::uint64_t> g_prog_total{0};
std::atomic<std::uint64_t> g_prog_done{0};
std::atomic<std::uint64_t> g_prog_ok{0};
std::atomic<std::uint64_t> g_prog_failed{0};

/** EWMA weight for the throughput estimate: ~0.3 means the last
 *  handful of samples dominate, so the ETA tracks regime shifts
 *  (e.g. the campaign reaching its big workloads) within a second
 *  or two at the default 250 ms interval. */
constexpr double kEwmaAlpha = 0.3;

/** Persist the flight ring every Nth sample: at 250 ms that is a
 *  dump per second — cheap (one small atomic file write) yet recent
 *  enough that a kill -9 post-mortem is at most a second stale. */
constexpr std::uint64_t kFlightDumpEvery = 4;

std::string
mib(double bytes)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1024.0 * 1024.0));
    return buf;
}

std::string
secs(double ms)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fs", ms / 1e3);
    return buf;
}

} // namespace

LiveSim *
liveSimActive()
{
    return g_live_active.load(std::memory_order_acquire) ? &g_live_sim
                                                         : nullptr;
}

LiveIngest *
liveIngestActive()
{
    return g_live_active.load(std::memory_order_acquire)
               ? &g_live_ingest
               : nullptr;
}

void
beginCampaign(std::uint64_t total, std::uint64_t done_already)
{
    g_prog_total.store(total, std::memory_order_relaxed);
    g_prog_done.store(done_already, std::memory_order_relaxed);
    g_prog_ok.store(done_already, std::memory_order_relaxed);
    g_prog_failed.store(0, std::memory_order_relaxed);
    g_prog_active.store(true, std::memory_order_release);
}

void
noteJobDone(bool ok)
{
    g_prog_done.fetch_add(1, std::memory_order_relaxed);
    if (ok)
        g_prog_ok.fetch_add(1, std::memory_order_relaxed);
    else
        g_prog_failed.fetch_add(1, std::memory_order_relaxed);
}

void
endCampaign()
{
    g_prog_active.store(false, std::memory_order_release);
}

ProgressSnapshot
progressSnapshot()
{
    ProgressSnapshot s;
    s.active = g_prog_active.load(std::memory_order_acquire);
    s.total = g_prog_total.load(std::memory_order_relaxed);
    s.done = g_prog_done.load(std::memory_order_relaxed);
    s.ok = g_prog_ok.load(std::memory_order_relaxed);
    s.failed = g_prog_failed.load(std::memory_order_relaxed);
    return s;
}

// --- Sampler --------------------------------------------------------

struct Sampler::Impl
{
    TelemetryOptions opts;
    FILE *out = nullptr;
    std::thread thread;
    std::mutex mutex; ///< serialises samples + start/stop state
    std::condition_variable cv;
    bool stopRequested = false;
    std::uint64_t seq = 0;
    MonoClock::time_point epoch;

    /** EWMA throughput state (campaign units per second). */
    bool haveRate = false;
    double rate = 0.0;
    std::uint64_t lastDone = 0;
    double lastTMs = 0.0;

    void writeLine(const std::string &line)
    {
        // Whole-line append + flush: one write() syscall per line in
        // O_APPEND mode, so lines from the sampler and the log sink
        // (same file, separate FILE*) never interleave mid-line and
        // kill -9 can tear at most the final line.
        std::fwrite(line.data(), 1, line.size(), out);
        std::fflush(out);
    }

    void writeHeader()
    {
        std::ostringstream oss;
        JsonWriter w(oss, -1);
        w.beginObject();
        w.field("kind", "header");
        w.field("schema", kTelemetrySchema);
        w.field("schema_minor", kTelemetrySchemaMinor);
        w.field("generator", versionBanner());
        w.field("interval_ms", opts.intervalMs);
        w.field("pid", static_cast<std::int64_t>(::getpid()));
        w.field("deterministic", opts.deterministic);
        w.endObject();
        w.finish();
        writeLine(oss.str());
    }

    void writeEnd()
    {
        const ProgressSnapshot prog = progressSnapshot();
        std::ostringstream oss;
        JsonWriter w(oss, -1);
        w.beginObject();
        w.field("kind", "end");
        w.field("t_ms", msSince(epoch));
        w.field("samples", seq);
        w.field("done", prog.done);
        w.field("ok", prog.ok);
        w.field("failed", prog.failed);
        w.endObject();
        w.finish();
        writeLine(oss.str());
    }

    /** Called with mutex held. */
    void sampleLocked()
    {
        const double t_ms = msSince(epoch);
        const ProgressSnapshot prog = progressSnapshot();

        // EWMA throughput -> ETA.  A resumed or restarted campaign
        // can move `done` backwards; treat that as a fresh start.
        if (prog.done < lastDone) {
            lastDone = prog.done;
            haveRate = false;
        }
        const double dt_s = (t_ms - lastTMs) / 1e3;
        if (dt_s > 1e-6) {
            const double inst =
                static_cast<double>(prog.done - lastDone) / dt_s;
            rate = haveRate ? kEwmaAlpha * inst + (1.0 - kEwmaAlpha) * rate
                            : inst;
            haveRate = true;
            lastDone = prog.done;
            lastTMs = t_ms;
        }
        double eta_ms = -1.0;
        if (prog.active && prog.total > prog.done && rate > 1e-9)
            eta_ms =
                static_cast<double>(prog.total - prog.done) / rate * 1e3;

        const ResourceUsage ru = currentResourceUsage();
        const ThreadPool::HealthSnapshot pool =
            ThreadPool::global().healthSnapshot();

        std::ostringstream oss;
        JsonWriter w(oss, -1);
        w.beginObject();
        w.field("kind", "sample");
        w.field("seq", ++seq);
        w.field("t_ms", t_ms);
        w.key("rusage");
        w.beginObject();
        w.field("peak_rss_bytes", ru.peakRssBytes);
        w.field("minor_faults", ru.minorFaults);
        w.field("major_faults", ru.majorFaults);
        w.endObject();
        w.key("pool");
        w.beginObject();
        w.field("workers", pool.workers);
        w.field("loops", pool.loops);
        w.field("queue_wait_count", pool.queueWaitCount);
        w.field("queue_wait_total_ms",
                static_cast<double>(pool.queueWaitTotalNs) / 1e6);
        w.field("queue_wait_max_ms",
                static_cast<double>(pool.queueWaitMaxNs) / 1e6);
        w.endObject();
        w.key("sim");
        w.beginObject();
        w.field("runs_started",
                g_live_sim.runsStarted.load(std::memory_order_relaxed));
        w.field("runs_completed",
                g_live_sim.runsCompleted.load(std::memory_order_relaxed));
        w.field("cycles",
                g_live_sim.completedCycles.load(std::memory_order_relaxed));
        w.field("words",
                g_live_sim.completedWords.load(std::memory_order_relaxed));
        w.field("current_cycle",
                g_live_sim.currentCycle.load(std::memory_order_relaxed));
        w.field("busy_pe_cycles",
                g_live_sim.busyPeCycles.load(std::memory_order_relaxed));
        w.endObject();
        w.key("progress");
        w.beginObject();
        w.field("active", prog.active);
        w.field("total", prog.total);
        w.field("done", prog.done);
        w.field("ok", prog.ok);
        w.field("failed", prog.failed);
        w.field("rate_per_sec", haveRate ? rate : 0.0);
        w.field("eta_ms", eta_ms);
        w.endObject();
        // Ingest progress is emitted unconditionally (zeros when no
        // streaming parse ran): the documented sample field set is
        // fixed, not data dependent.
        w.key("ingest");
        w.beginObject();
        w.field("active",
                g_live_ingest.active.load(std::memory_order_relaxed) !=
                    0);
        w.field("bytes_read",
                g_live_ingest.bytesRead.load(std::memory_order_relaxed));
        w.field("bytes_total",
                g_live_ingest.bytesTotal.load(std::memory_order_relaxed));
        w.field("lines",
                g_live_ingest.lines.load(std::memory_order_relaxed));
        w.field("entries",
                g_live_ingest.entries.load(std::memory_order_relaxed));
        w.field("spill_bytes",
                g_live_ingest.spillBytes.load(std::memory_order_relaxed));
        w.field("spill_flushes",
                g_live_ingest.spillFlushes.load(
                    std::memory_order_relaxed));
        w.endObject();
        // Registry metrics are an open set and can be large; they
        // only ride along while a sink actually enabled collection.
        const obs::Registry &reg = obs::Registry::global();
        if (reg.enabled()) {
            w.key("counters");
            w.beginObject();
            for (const auto &[name, v] : reg.counters())
                w.field(name, v);
            w.endObject();
            w.key("gauges");
            w.beginObject();
            for (const auto &[name, v] : reg.gauges())
                w.field(name, v);
            w.endObject();
        }
        w.endObject();
        w.finish();
        const std::string line = oss.str();
        writeLine(line);

        // Feed the post-mortem: remember this sample verbatim, and
        // periodically persist the whole ring so even kill -9 — which
        // no handler observes — leaves a recent flight record.
        FlightRecorder &fr = FlightRecorder::global();
        fr.setLastSnapshot(
            std::string_view(line.data(), line.size() - 1)); // sans \n
        if (seq % kFlightDumpEvery == 1)
            fr.dump("periodic", "sampler");
    }

    void threadMain()
    {
        std::unique_lock<std::mutex> lock(mutex);
        while (!stopRequested) {
            cv.wait_for(lock,
                        std::chrono::milliseconds(
                            opts.intervalMs > 0 ? opts.intervalMs : 250),
                        [this] { return stopRequested; });
            if (stopRequested)
                break;
            sampleLocked();
        }
    }
};

Sampler &
Sampler::global()
{
    static Sampler sampler;
    return sampler;
}

bool
Sampler::running() const
{
    return impl_ != nullptr;
}

bool
Sampler::start(const TelemetryOptions &opts)
{
    if (impl_ != nullptr) {
        logWarn("telemetry", "sampler already running; ignoring start");
        return false;
    }
    FILE *out = std::fopen(opts.path.c_str(), "a");
    if (out == nullptr) {
        logWarn("telemetry", "cannot open telemetry stream '%s'",
                opts.path.c_str());
        return false;
    }
    auto *impl = new Impl;
    impl->opts = opts;
    if (impl->opts.flightPath.empty())
        impl->opts.flightPath = opts.path + ".flight.json";
    impl->out = out;
    impl->epoch = monoNow();
    impl->writeHeader();

    // The flight recorder and the structured log sink ride on the
    // same lifecycle: armed/opened with the stream, released with it.
    FlightRecorder::global().arm(impl->opts.flightPath,
                                 opts.deterministic);
    FlightRecorder::installCrashHandlers();
    openLogSink(opts.path, opts.deterministic);

    // Publish the live-sim gate last: a simulator run that polls the
    // gate from here on sees fully initialised state.
    for (auto *c :
         {&g_live_sim.runsStarted, &g_live_sim.runsCompleted,
          &g_live_sim.completedCycles, &g_live_sim.completedWords,
          &g_live_sim.currentCycle, &g_live_sim.busyPeCycles})
        c->store(0, std::memory_order_relaxed);
    for (auto *c :
         {&g_live_ingest.active, &g_live_ingest.bytesRead,
          &g_live_ingest.bytesTotal, &g_live_ingest.lines,
          &g_live_ingest.entries, &g_live_ingest.spillBytes,
          &g_live_ingest.spillFlushes})
        c->store(0, std::memory_order_relaxed);
    g_live_active.store(true, std::memory_order_release);

    impl->thread = std::thread([impl] { impl->threadMain(); });
    impl_ = impl;
    logDebug("telemetry", "sampler started: %s (interval %d ms)",
             opts.path.c_str(), impl->opts.intervalMs);
    return true;
}

void
Sampler::stop()
{
    if (impl_ == nullptr)
        return;
    Impl *impl = impl_;
    impl_ = nullptr;
    {
        std::lock_guard<std::mutex> lock(impl->mutex);
        impl->stopRequested = true;
    }
    impl->cv.notify_all();
    impl->thread.join();
    g_live_active.store(false, std::memory_order_release);
    {
        // Final sample + end record so a clean run's last line always
        // reflects the finished campaign.
        std::lock_guard<std::mutex> lock(impl->mutex);
        impl->sampleLocked();
        impl->writeEnd();
    }
    closeLogSink();
    FlightRecorder::global().dump("shutdown", "sampler stop");
    FlightRecorder::global().disarm();
    std::fclose(impl->out);
    delete impl;
}

void
Sampler::sampleNow()
{
    if (impl_ == nullptr)
        return;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->sampleLocked();
}

// --- Read side ------------------------------------------------------

bool
looksLikeTelemetry(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string first;
    if (!std::getline(in, first))
        return false;
    return first.find("\"kind\":\"header\"") != std::string::npos &&
           first.find(kTelemetrySchema) != std::string::npos;
}

namespace {

TelemetrySample
parseSample(const JsonValue &v)
{
    TelemetrySample s;
    s.seq = static_cast<std::uint64_t>(v.numberOr("seq", 0));
    s.tMs = v.numberOr("t_ms", 0);
    if (const JsonValue *ru = v.find("rusage"))
        s.peakRssBytes =
            static_cast<std::uint64_t>(ru->numberOr("peak_rss_bytes", 0));
    if (const JsonValue *pool = v.find("pool"))
        s.poolWorkers =
            static_cast<std::uint64_t>(pool->numberOr("workers", 0));
    if (const JsonValue *sim = v.find("sim")) {
        s.simRunsStarted = static_cast<std::uint64_t>(
            sim->numberOr("runs_started", 0));
        s.simRunsCompleted = static_cast<std::uint64_t>(
            sim->numberOr("runs_completed", 0));
        s.simCycles =
            static_cast<std::uint64_t>(sim->numberOr("cycles", 0));
        s.simCurrentCycle = static_cast<std::uint64_t>(
            sim->numberOr("current_cycle", 0));
    }
    if (const JsonValue *prog = v.find("progress")) {
        if (const JsonValue *a = prog->find("active"))
            s.progressActive = a->boolean;
        s.progressTotal =
            static_cast<std::uint64_t>(prog->numberOr("total", 0));
        s.progressDone =
            static_cast<std::uint64_t>(prog->numberOr("done", 0));
        s.progressOk =
            static_cast<std::uint64_t>(prog->numberOr("ok", 0));
        s.progressFailed =
            static_cast<std::uint64_t>(prog->numberOr("failed", 0));
        s.ratePerSec = prog->numberOr("rate_per_sec", 0);
        s.etaMs = prog->numberOr("eta_ms", -1);
    }
    if (const JsonValue *ing = v.find("ingest")) {
        if (const JsonValue *a = ing->find("active"))
            s.ingestActive = a->boolean;
        s.ingestBytesRead =
            static_cast<std::uint64_t>(ing->numberOr("bytes_read", 0));
        s.ingestBytesTotal =
            static_cast<std::uint64_t>(ing->numberOr("bytes_total", 0));
        s.ingestLines =
            static_cast<std::uint64_t>(ing->numberOr("lines", 0));
        s.ingestEntries =
            static_cast<std::uint64_t>(ing->numberOr("entries", 0));
        s.ingestSpillBytes =
            static_cast<std::uint64_t>(ing->numberOr("spill_bytes", 0));
        s.ingestSpillFlushes = static_cast<std::uint64_t>(
            ing->numberOr("spill_flushes", 0));
    }
    return s;
}

} // namespace

TelemetryStream
loadTelemetry(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw Error::atInput(ErrorCode::Io, path,
                             "cannot open telemetry stream");
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    if (lines.empty())
        throw Error::atInput(ErrorCode::Truncated, path,
                             "empty telemetry stream");

    TelemetryStream stream;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string err;
        const JsonValue v = parseJson(lines[i], &err);
        const bool parsed = err.empty() && v.isObject();
        if (!parsed) {
            // The kill -9 artifact: exactly one torn line, and only
            // at the very end of the stream.
            if (i + 1 == lines.size()) {
                ++stream.truncatedLines;
                continue;
            }
            throw Error::atLine(ErrorCode::Parse, path,
                                static_cast<std::int64_t>(i + 1),
                                "unparseable telemetry line: %s",
                                err.c_str());
        }
        const std::string kind = v.stringOr("kind");
        if (kind == "header") {
            const std::string schema = v.stringOr("schema");
            if (schema != kTelemetrySchema)
                throw Error::atLine(
                    ErrorCode::BadMagic, path,
                    static_cast<std::int64_t>(i + 1),
                    "not a telemetry stream (schema '%s')",
                    schema.c_str());
            stream.sawHeader = true;
            stream.generator = v.stringOr("generator");
            stream.intervalMs =
                static_cast<int>(v.numberOr("interval_ms", 0));
            stream.schemaMinor = v.numberOr("schema_minor", 0);
        } else if (kind == "sample") {
            stream.samples.push_back(parseSample(v));
        } else if (kind == "log") {
            ++stream.logLines;
        } else if (kind == "end") {
            stream.sawEnd = true;
        } else {
            throw Error::atLine(ErrorCode::Parse, path,
                                static_cast<std::int64_t>(i + 1),
                                "unknown telemetry record kind '%s'",
                                kind.c_str());
        }
    }
    if (!stream.sawHeader)
        throw Error::atInput(ErrorCode::BadMagic, path,
                             "no spasm-telemetry-v1 header line");
    return stream;
}

void
renderTelemetrySample(std::ostream &os, const TelemetrySample &s)
{
    char buf[256];
    std::string progress;
    if (s.progressTotal > 0) {
        std::snprintf(buf, sizeof(buf), "%llu/%llu (%.0f%%)",
                      static_cast<unsigned long long>(s.progressDone),
                      static_cast<unsigned long long>(s.progressTotal),
                      100.0 * static_cast<double>(s.progressDone) /
                          static_cast<double>(s.progressTotal));
        progress = buf;
    } else {
        std::snprintf(buf, sizeof(buf), "%llu done",
                      static_cast<unsigned long long>(s.progressDone));
        progress = buf;
    }
    std::string eta = "n/a";
    if (s.etaMs >= 0)
        eta = secs(s.etaMs);
    std::snprintf(
        buf, sizeof(buf),
        "[%7s] jobs %s ok %llu fail %llu | %.2f/s eta %s | "
        "sim runs %llu cycles %llu | rss %s",
        secs(s.tMs).c_str(), progress.c_str(),
        static_cast<unsigned long long>(s.progressOk),
        static_cast<unsigned long long>(s.progressFailed), s.ratePerSec,
        eta.c_str(),
        static_cast<unsigned long long>(s.simRunsCompleted),
        static_cast<unsigned long long>(s.simCycles +
                                        s.simCurrentCycle),
        mib(static_cast<double>(s.peakRssBytes)).c_str());
    os << buf;
    // Streaming-parse progress rides along only while (or after) an
    // ingest actually ran, so idle streams render exactly as before.
    if (s.ingestBytesRead > 0 || s.ingestActive) {
        if (s.ingestBytesTotal > 0) {
            std::snprintf(
                buf, sizeof(buf), " | ingest %s/%s (%.0f%%)%s",
                mib(static_cast<double>(s.ingestBytesRead)).c_str(),
                mib(static_cast<double>(s.ingestBytesTotal)).c_str(),
                100.0 * static_cast<double>(s.ingestBytesRead) /
                    static_cast<double>(s.ingestBytesTotal),
                s.ingestSpillBytes > 0 ? " spilling" : "");
        } else {
            std::snprintf(
                buf, sizeof(buf), " | ingest %s%s",
                mib(static_cast<double>(s.ingestBytesRead)).c_str(),
                s.ingestSpillBytes > 0 ? " spilling" : "");
        }
        os << buf;
    }
    os << '\n';
}

void
renderTelemetry(std::ostream &os, const TelemetryStream &stream)
{
    os << "telemetry stream: " << stream.generator << " (interval "
       << stream.intervalMs << " ms, " << stream.samples.size()
       << " samples, " << stream.logLines << " log lines, "
       << (stream.sawEnd ? "ended cleanly" : "no end record") << ")\n";
    if (stream.truncatedLines > 0)
        os << "  note: " << stream.truncatedLines
           << " torn trailing line(s) ignored (killed mid-write?)\n";
    for (const TelemetrySample &s : stream.samples) {
        os << "  ";
        renderTelemetrySample(os, s);
    }
}

void
renderTelemetryReport(std::ostream &os, const TelemetryStream &stream)
{
    os << "telemetry report: " << stream.generator << "\n";
    if (stream.samples.empty()) {
        os << "  no samples (stream "
           << (stream.sawEnd ? "ended" : "torn") << " before the first "
           << "interval elapsed)\n";
        return;
    }
    const TelemetrySample &first = stream.samples.front();
    const TelemetrySample &last = stream.samples.back();
    const double span_ms = last.tMs - first.tMs;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  samples: %zu over %s (interval %d ms)%s\n",
                  stream.samples.size(), secs(span_ms).c_str(),
                  stream.intervalMs,
                  stream.sawEnd ? "" : "  [no end record: stream died]");
    os << buf;

    // Campaign timeline.
    std::snprintf(
        buf, sizeof(buf),
        "  campaign: %llu/%llu done (%llu ok, %llu failed) at t=%s\n",
        static_cast<unsigned long long>(last.progressDone),
        static_cast<unsigned long long>(last.progressTotal),
        static_cast<unsigned long long>(last.progressOk),
        static_cast<unsigned long long>(last.progressFailed),
        secs(last.tMs).c_str());
    os << buf;
    std::snprintf(
        buf, sizeof(buf),
        "  simulator: %llu runs, %llu cycles total, peak rss %s\n",
        static_cast<unsigned long long>(last.simRunsCompleted),
        static_cast<unsigned long long>(last.simCycles),
        mib(static_cast<double>(last.peakRssBytes)).c_str());
    os << buf;

    // Throughput over time: up to 8 equal-duration buckets of the
    // completed-units delta.
    os << "  throughput over time:\n";
    const std::size_t nbuckets =
        std::min<std::size_t>(8, stream.samples.size());
    double max_rate = 0.0;
    std::vector<double> bucket_rate(nbuckets, 0.0);
    std::vector<std::pair<double, double>> bucket_span(nbuckets);
    for (std::size_t b = 0; b < nbuckets; ++b) {
        const std::size_t lo =
            b * (stream.samples.size() - 1) / nbuckets;
        const std::size_t hi =
            (b + 1) * (stream.samples.size() - 1) / nbuckets;
        const TelemetrySample &a = stream.samples[lo];
        const TelemetrySample &z = stream.samples[hi];
        const double dt_s = (z.tMs - a.tMs) / 1e3;
        bucket_span[b] = {a.tMs, z.tMs};
        bucket_rate[b] =
            dt_s > 1e-9 ? static_cast<double>(z.progressDone -
                                              a.progressDone) /
                              dt_s
                        : 0.0;
        max_rate = std::max(max_rate, bucket_rate[b]);
    }
    for (std::size_t b = 0; b < nbuckets; ++b) {
        const int bars =
            max_rate > 0
                ? static_cast<int>(bucket_rate[b] / max_rate * 20 + 0.5)
                : 0;
        std::snprintf(buf, sizeof(buf), "    [%7s - %7s] %6.2f/s  ",
                      secs(bucket_span[b].first).c_str(),
                      secs(bucket_span[b].second).c_str(),
                      bucket_rate[b]);
        os << buf;
        for (int i = 0; i < bars; ++i)
            os << '#';
        os << '\n';
    }

    // Rate-regime shifts: adjacent buckets whose throughput moved by
    // more than 50% relative — the stall-regime analogue at campaign
    // granularity (a shift usually means the campaign entered its
    // large workloads or a stall regime change inside one).
    os << "  rate regime shifts:\n";
    bool any = false;
    for (std::size_t b = 1; b < nbuckets; ++b) {
        const double prev = bucket_rate[b - 1];
        const double cur = bucket_rate[b];
        if (prev <= 1e-9 && cur <= 1e-9)
            continue;
        const double rel =
            prev > 1e-9 ? (cur - prev) / prev
                        : std::numeric_limits<double>::infinity();
        if (std::fabs(rel) < 0.5)
            continue;
        any = true;
        std::snprintf(buf, sizeof(buf),
                      "    t=%s: %.2f/s -> %.2f/s (%+.0f%%)\n",
                      secs(bucket_span[b].first).c_str(), prev, cur,
                      std::isfinite(rel) ? rel * 100.0 : 999.0);
        os << buf;
    }
    if (!any)
        os << "    (none)\n";
}

// --- Prometheus export ----------------------------------------------

namespace {

std::string
promName(const std::string &name)
{
    std::string out = "spasm_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

void
promNumber(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
}

} // namespace

void
writePrometheusText(std::ostream &os, const obs::Registry &reg)
{
    for (const auto &[name, v] : reg.counters()) {
        const std::string pn = promName(name);
        os << "# TYPE " << pn << " counter\n";
        os << pn << ' ' << v << '\n';
    }
    for (const auto &[name, v] : reg.gauges()) {
        const std::string pn = promName(name);
        os << "# TYPE " << pn << " gauge\n";
        os << pn << ' ';
        promNumber(os, v);
        os << '\n';
    }
    for (const auto &[name, h] : reg.histograms()) {
        const std::string pn = promName(name);
        os << "# TYPE " << pn << " summary\n";
        for (double q : {0.5, 0.9, 0.99}) {
            os << pn << "{quantile=\"";
            promNumber(os, q);
            os << "\"} ";
            promNumber(os, h.percentile(q));
            os << '\n';
        }
        os << pn << "_sum ";
        promNumber(os, h.sum());
        os << '\n';
        os << pn << "_count " << h.count() << '\n';
    }
}

} // namespace telemetry
} // namespace spasm
