#include "format/serialize.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

#include "support/bits.hh"
#include "support/crc32.hh"
#include "support/error.hh"

namespace spasm {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'S', 'M'};

/** Section tags, serialized as 4 raw bytes. */
constexpr char kTagHeader[4] = {'H', 'D', 'R', ' '};
constexpr char kTagPortfolio[4] = {'P', 'R', 'T', ' '};
constexpr char kTagTiles[4] = {'T', 'I', 'L', ' '};

/** Payload-read chunk: bounds the allocation a lying length prefix
 *  can force before truncation is noticed. */
constexpr std::uint64_t kReadChunk = 4ull << 20;

/** Fixed word cost in the TIL payload: u32 pos + 4 x f32. */
constexpr std::uint64_t kWordBytes = 20;

/** Minimum tile cost in the TIL payload: two i32 + u64 count. */
constexpr std::uint64_t kTileHeaderBytes = 16;

template <typename T>
void
appendPod(std::string &out, const T &v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

/** Serialize one section: tag | u64 length | payload | u32 crc. */
void
writeSection(std::ostream &out, const char (&tag)[4],
             const std::string &payload)
{
    out.write(tag, sizeof(tag));
    const std::uint64_t len = payload.size();
    out.write(reinterpret_cast<const char *>(&len), sizeof(len));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    const std::uint32_t crc = crc32(payload.data(), payload.size());
    out.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
}

/**
 * Cursor over the raw input stream that tracks the absolute byte
 * offset for diagnostics and converts short reads into typed errors.
 */
class StreamReader
{
  public:
    StreamReader(std::istream &in, const std::string &name)
        : in_(in), name_(name)
    {
    }

    std::int64_t offset() const { return offset_; }
    const std::string &name() const { return name_; }

    void
    readExact(void *dst, std::size_t size, const char *what)
    {
        in_.read(static_cast<char *>(dst),
                 static_cast<std::streamsize>(size));
        const auto got = in_.gcount();
        if (static_cast<std::size_t>(got) != size) {
            throw Error::atByte(
                ErrorCode::Truncated, name_, offset_ + got,
                "truncated .spasm file while reading %s (wanted %zu "
                "bytes, got %zu)",
                what, size, static_cast<std::size_t>(got));
        }
        offset_ += static_cast<std::int64_t>(size);
    }

    template <typename T>
    T
    readPod(const char *what)
    {
        T v{};
        readExact(&v, sizeof(T), what);
        return v;
    }

    /** True once the stream is exhausted (peeks one byte). */
    bool
    atEof()
    {
        return in_.peek() == std::char_traits<char>::eof();
    }

  private:
    std::istream &in_;
    std::string name_;
    std::int64_t offset_ = 0;
};

/**
 * One verified section: its payload (CRC-checked against the stored
 * checksum) plus the absolute offset of the payload start so parse
 * errors can still point into the file.
 */
struct Section
{
    std::vector<char> payload;
    std::int64_t payloadStart = 0;
};

Section
readSection(StreamReader &in, const char (&expect_tag)[4],
            const SerializeLimits &limits)
{
    const std::int64_t tag_at = in.offset();
    char tag[4] = {};
    in.readExact(tag, sizeof(tag), "section tag");
    if (std::memcmp(tag, expect_tag, sizeof(tag)) != 0) {
        throw Error::atByte(
            ErrorCode::Invariant, in.name(), tag_at,
            "unexpected section tag '%.4s' (expected '%.4s')", tag,
            expect_tag);
    }
    const auto len = in.readPod<std::uint64_t>("section length");
    if (len > limits.maxSectionBytes) {
        throw Error::atByte(
            ErrorCode::LimitExceeded, in.name(), tag_at,
            "section '%.4s' declares %llu bytes, above the %llu-byte "
            "cap",
            expect_tag, static_cast<unsigned long long>(len),
            static_cast<unsigned long long>(limits.maxSectionBytes));
    }

    Section section;
    section.payloadStart = in.offset();
    // Grow in bounded chunks: a lying length prefix hits the
    // truncation error after at most one extra chunk of allocation.
    std::uint64_t remaining = len;
    while (remaining > 0) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, kReadChunk));
        const std::size_t old = section.payload.size();
        section.payload.resize(old + chunk);
        in.readExact(section.payload.data() + old, chunk,
                     "section payload");
        remaining -= chunk;
    }

    const auto stored = in.readPod<std::uint32_t>("section checksum");
    const std::uint32_t computed =
        crc32(section.payload.data(), section.payload.size());
    if (stored != computed) {
        throw Error::atByte(
            ErrorCode::ChecksumMismatch, in.name(),
            section.payloadStart,
            "section '%.4s' checksum mismatch (stored 0x%08x, "
            "computed 0x%08x): corrupt or tampered payload",
            expect_tag, stored, computed);
    }
    return section;
}

/** Bounds-checked cursor over one verified section payload. */
class PayloadReader
{
  public:
    PayloadReader(const Section &section, const std::string &name)
        : section_(section), name_(name)
    {
    }

    /** Absolute file offset of the next unread payload byte. */
    std::int64_t offset() const
    {
        return section_.payloadStart +
            static_cast<std::int64_t>(pos_);
    }

    std::uint64_t remaining() const
    {
        return section_.payload.size() - pos_;
    }

    template <typename T>
    T
    readPod(const char *what)
    {
        if (remaining() < sizeof(T)) {
            throw Error::atByte(
                ErrorCode::Truncated, name_, offset(),
                "section payload ends inside %s", what);
        }
        T v{};
        std::memcpy(&v, section_.payload.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    std::string
    readString(std::size_t size, const char *what)
    {
        if (remaining() < size) {
            throw Error::atByte(
                ErrorCode::Truncated, name_, offset(),
                "section payload ends inside %s", what);
        }
        std::string s(section_.payload.data() + pos_, size);
        pos_ += size;
        return s;
    }

    void
    expectConsumed(const char *section_name)
    {
        if (remaining() != 0) {
            throw Error::atByte(
                ErrorCode::Invariant, name_, offset(),
                "%llu trailing bytes after the %s section content",
                static_cast<unsigned long long>(remaining()),
                section_name);
        }
    }

  private:
    const Section &section_;
    std::string name_;
    std::size_t pos_ = 0;
};

} // namespace

const SerializeLimits &
SerializeLimits::defaults()
{
    static const SerializeLimits limits;
    return limits;
}

void
writeSpasmFile(const SpasmMatrix &m, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw Error::atInput(ErrorCode::Io, path,
                             "cannot open for writing");
    }
    writeSpasmFile(m, out);
    if (!out)
        throw Error::atInput(ErrorCode::Io, path, "I/O error writing");
}

void
writeSpasmFile(const SpasmMatrix &m, std::ostream &out)
{
    out.write(kMagic, sizeof(kMagic));
    const std::uint32_t version = kSpasmFileVersion;
    out.write(reinterpret_cast<const char *>(&version),
              sizeof(version));

    std::string hdr;
    appendPod<std::int32_t>(hdr, m.rows());
    appendPod<std::int32_t>(hdr, m.cols());
    appendPod<std::int32_t>(hdr, m.tileSize());
    appendPod<std::int64_t>(hdr, m.nnz());
    appendPod<std::int64_t>(hdr, m.numWords());
    appendPod<std::int64_t>(hdr, m.paddings());
    appendPod<std::uint64_t>(hdr, m.tiles().size());
    writeSection(out, kTagHeader, hdr);

    const auto &portfolio = m.portfolio();
    std::string prt;
    appendPod<std::int32_t>(prt, portfolio.id());
    appendPod<std::uint32_t>(
        prt, static_cast<std::uint32_t>(portfolio.name().size()));
    prt.append(portfolio.name());
    appendPod<std::int32_t>(prt, portfolio.grid().size);
    appendPod<std::uint32_t>(
        prt, static_cast<std::uint32_t>(portfolio.size()));
    for (const auto &t : portfolio.templates())
        appendPod<std::uint16_t>(prt, t.mask());
    writeSection(out, kTagPortfolio, prt);

    std::string til;
    for (const auto &tile : m.tiles()) {
        appendPod<std::int32_t>(til, tile.tileRowIdx);
        appendPod<std::int32_t>(til, tile.tileColIdx);
        appendPod<std::uint64_t>(til, tile.words.size());
        for (const auto &word : tile.words) {
            appendPod<std::uint32_t>(til, word.pos.raw());
            for (Value v : word.vals)
                appendPod<float>(til, v);
        }
    }
    writeSection(out, kTagTiles, til);
}

SpasmMatrix
readSpasmFile(const std::string &path, const SerializeLimits &limits)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error::atInput(ErrorCode::Io, path,
                             "cannot open .spasm file");
    }
    return readSpasmFile(in, path, limits);
}

SpasmMatrix
readSpasmFile(std::istream &in, const std::string &name)
{
    return readSpasmFile(in, name, SerializeLimits::defaults());
}

SpasmMatrix
readSpasmFile(std::istream &in, const std::string &name,
              const SerializeLimits &limits)
{
    StreamReader stream(in, name);
    char magic[4] = {};
    stream.readExact(magic, sizeof(magic), "magic");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throw Error::atByte(ErrorCode::BadMagic, name, 0,
                            "not a .spasm file (bad magic)");
    }
    const auto version = stream.readPod<std::uint32_t>("version");
    if (version != kSpasmFileVersion) {
        throw Error::atByte(
            ErrorCode::BadVersion, name, 4,
            "unsupported .spasm version %u (this build reads %u; "
            "re-encode with `spasm encode`)",
            version, kSpasmFileVersion);
    }

    // ---- HDR: dimensions and stream totals.
    SpasmMatrix m;
    std::uint64_t num_tiles = 0;
    {
        const Section s = readSection(stream, kTagHeader, limits);
        PayloadReader hdr(s, name);
        m.rows_ = hdr.readPod<std::int32_t>("rows");
        m.cols_ = hdr.readPod<std::int32_t>("cols");
        m.tileSize_ = hdr.readPod<std::int32_t>("tile size");
        m.nnz_ = hdr.readPod<std::int64_t>("nnz");
        m.numWords_ = hdr.readPod<std::int64_t>("word count");
        m.paddings_ = hdr.readPod<std::int64_t>("padding count");
        num_tiles = hdr.readPod<std::uint64_t>("tile count");
        hdr.expectConsumed("HDR");
        if (m.rows_ < 0 || m.cols_ < 0 || m.tileSize_ < 0 ||
            m.tileSize_ > kMaxTileSize || m.nnz_ < 0 ||
            m.numWords_ < 0 || m.paddings_ < 0) {
            throw Error::atByte(
                ErrorCode::CorruptHeader, name, s.payloadStart,
                "corrupt header (rows %d, cols %d, tile %d, nnz %lld,"
                " words %lld, paddings %lld)",
                m.rows_, m.cols_, m.tileSize_,
                static_cast<long long>(m.nnz_),
                static_cast<long long>(m.numWords_),
                static_cast<long long>(m.paddings_));
        }
        if (num_tiles > limits.maxTiles) {
            throw Error::atByte(
                ErrorCode::LimitExceeded, name, s.payloadStart,
                "tile count %llu above the %llu cap",
                static_cast<unsigned long long>(num_tiles),
                static_cast<unsigned long long>(limits.maxTiles));
        }
    }

    // ---- PRT: the template portfolio the stream was encoded with.
    {
        const Section s = readSection(stream, kTagPortfolio, limits);
        PayloadReader prt(s, name);
        const auto portfolio_id =
            prt.readPod<std::int32_t>("portfolio id");
        const auto name_len =
            prt.readPod<std::uint32_t>("portfolio name length");
        if (name_len > limits.maxNameBytes) {
            throw Error::atByte(
                ErrorCode::LimitExceeded, name, prt.offset(),
                "portfolio name length %u above the %u-byte cap",
                name_len, limits.maxNameBytes);
        }
        std::string portfolio_name =
            prt.readString(name_len, "portfolio name");
        const auto grid_size =
            prt.readPod<std::int32_t>("grid size");
        if (grid_size < 2 || grid_size > 4) {
            throw Error::atByte(ErrorCode::CorruptHeader, name,
                                prt.offset(),
                                "corrupt grid size %d (expected 2-4)",
                                grid_size);
        }
        const auto num_templates =
            prt.readPod<std::uint32_t>("template count");
        if (num_templates == 0 || num_templates > 16) {
            throw Error::atByte(
                ErrorCode::CorruptHeader, name, prt.offset(),
                "corrupt template count %u (expected 1-16)",
                num_templates);
        }
        // Validate the masks *before* handing them to the portfolio
        // constructor: TemplatePortfolio treats a bad mask as a
        // library-usage bug and aborts, which is the wrong outcome for
        // untrusted file input.
        const PatternGrid grid{grid_size};
        const PatternMask full = static_cast<PatternMask>(
            (1u << grid.cells()) - 1u);
        std::vector<PatternMask> masks;
        masks.reserve(num_templates);
        PatternMask coverage = 0;
        for (std::uint32_t i = 0; i < num_templates; ++i) {
            const std::int64_t mask_at = prt.offset();
            const auto mask = prt.readPod<std::uint16_t>("mask");
            if (popcount(mask) != grid.size ||
                (mask & ~full) != 0) {
                throw Error::atByte(
                    ErrorCode::Invariant, name, mask_at,
                    "template mask %u (0x%04x) is not a %d-cell "
                    "pattern on a %dx%d grid",
                    i, mask, grid.size, grid.size, grid.size);
            }
            coverage = static_cast<PatternMask>(coverage | mask);
            masks.push_back(mask);
        }
        prt.expectConsumed("PRT");
        if (coverage != full) {
            throw Error::atByte(
                ErrorCode::Invariant, name, s.payloadStart,
                "portfolio '%s' does not cover the %dx%d grid",
                portfolio_name.c_str(), grid.size, grid.size);
        }
        m.portfolio_ = TemplatePortfolio(
            portfolio_id, std::move(portfolio_name),
            std::move(masks), grid);
    }

    // ---- TIL: the tile word streams.
    {
        const Section s = readSection(stream, kTagTiles, limits);
        PayloadReader til(s, name);
        // Structural cap: every tile costs >= kTileHeaderBytes, so a
        // corrupt count that survived the HDR checksum still cannot
        // force a reserve beyond the verified payload size.
        if (num_tiles > til.remaining() / kTileHeaderBytes) {
            throw Error::atByte(
                ErrorCode::Invariant, name, s.payloadStart,
                "tile count %llu impossible for a %llu-byte TIL "
                "section",
                static_cast<unsigned long long>(num_tiles),
                static_cast<unsigned long long>(til.remaining()));
        }
        m.tiles_.reserve(static_cast<std::size_t>(num_tiles));
        const std::uint32_t num_templates = static_cast<std::uint32_t>(
            m.portfolio_.templates().size());
        const int sub = m.portfolio_.grid().size;
        const std::uint32_t max_sub = static_cast<std::uint32_t>(
            m.tileSize_ > 0 ? (m.tileSize_ + sub - 1) / sub : 0);
        std::int64_t words_seen = 0;
        for (std::uint64_t t = 0; t < num_tiles; ++t) {
            SpasmTile tile;
            tile.tileRowIdx = til.readPod<std::int32_t>("tile row");
            tile.tileColIdx =
                til.readPod<std::int32_t>("tile column");
            if (tile.tileRowIdx < 0 || tile.tileColIdx < 0) {
                throw Error::atByte(
                    ErrorCode::Invariant, name, til.offset(),
                    "negative tile coordinates (%d, %d)",
                    tile.tileRowIdx, tile.tileColIdx);
            }
            const auto num_words =
                til.readPod<std::uint64_t>("tile word count");
            if (num_words > til.remaining() / kWordBytes) {
                throw Error::atByte(
                    ErrorCode::Invariant, name, til.offset(),
                    "tile %llu declares %llu words but only %llu "
                    "payload bytes remain",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(num_words),
                    static_cast<unsigned long long>(til.remaining()));
            }
            tile.words.reserve(static_cast<std::size_t>(num_words));
            for (std::uint64_t w = 0; w < num_words; ++w) {
                EncodedWord word;
                const std::int64_t word_at = til.offset();
                word.pos = PositionEncoding::fromRaw(
                    til.readPod<std::uint32_t>("position word"));
                for (auto &v : word.vals)
                    v = til.readPod<float>("value");
                // Format invariants the simulator relies on: indices
                // inside the tile, template inside the portfolio.  A
                // valid checksum does not make a hand-written file
                // safe to execute.
                if (word.pos.rIdx() >= max_sub ||
                    word.pos.cIdx() >= max_sub ||
                    word.pos.tIdx() >= num_templates) {
                    throw Error::atByte(
                        ErrorCode::Invariant, name, word_at,
                        "word %llu of tile %llu out of range "
                        "(r_idx %u, c_idx %u of %u submatrices; "
                        "t_idx %u of %u templates)",
                        static_cast<unsigned long long>(w),
                        static_cast<unsigned long long>(t),
                        word.pos.rIdx(), word.pos.cIdx(), max_sub,
                        word.pos.tIdx(), num_templates);
                }
                tile.words.push_back(word);
            }
            words_seen += static_cast<std::int64_t>(num_words);
            m.tiles_.push_back(std::move(tile));
        }
        til.expectConsumed("TIL");
        if (words_seen != m.numWords_) {
            throw Error::atByte(
                ErrorCode::Invariant, name, s.payloadStart,
                "word count mismatch (header %lld, body %lld)",
                static_cast<long long>(m.numWords_),
                static_cast<long long>(words_seen));
        }
    }

    if (!stream.atEof()) {
        throw Error::atByte(ErrorCode::Invariant, name,
                            stream.offset(),
                            "trailing bytes after the TIL section");
    }
    return m;
}

} // namespace spasm
