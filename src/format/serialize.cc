#include "format/serialize.hh"

#include <cstring>
#include <fstream>

#include "support/logging.hh"

namespace spasm {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'S', 'M'};

template <typename T>
void
writePod(std::ostream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in, const std::string &name)
{
    T v{};
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!in)
        spasm_fatal("%s: truncated .spasm file", name.c_str());
    return v;
}

} // namespace

void
writeSpasmFile(const SpasmMatrix &m, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        spasm_fatal("cannot open '%s' for writing", path.c_str());
    writeSpasmFile(m, out);
    if (!out)
        spasm_fatal("I/O error writing '%s'", path.c_str());
}

void
writeSpasmFile(const SpasmMatrix &m, std::ostream &out)
{
    out.write(kMagic, sizeof(kMagic));
    writePod(out, kSpasmFileVersion);

    writePod<std::int32_t>(out, m.rows());
    writePod<std::int32_t>(out, m.cols());
    writePod<std::int32_t>(out, m.tileSize());
    writePod<std::int64_t>(out, m.nnz());
    writePod<std::int64_t>(out, m.numWords());
    writePod<std::int64_t>(out, m.paddings());

    const auto &portfolio = m.portfolio();
    writePod<std::int32_t>(out, portfolio.id());
    writePod<std::uint32_t>(
        out, static_cast<std::uint32_t>(portfolio.name().size()));
    out.write(portfolio.name().data(),
              static_cast<std::streamsize>(portfolio.name().size()));
    writePod<std::int32_t>(out, portfolio.grid().size);
    writePod<std::uint32_t>(
        out, static_cast<std::uint32_t>(portfolio.size()));
    for (const auto &t : portfolio.templates())
        writePod<std::uint16_t>(out, t.mask());

    writePod<std::uint64_t>(out, m.tiles().size());
    for (const auto &tile : m.tiles()) {
        writePod<std::int32_t>(out, tile.tileRowIdx);
        writePod<std::int32_t>(out, tile.tileColIdx);
        writePod<std::uint64_t>(out, tile.words.size());
        for (const auto &word : tile.words) {
            writePod<std::uint32_t>(out, word.pos.raw());
            for (Value v : word.vals)
                writePod<float>(out, v);
        }
    }
}

SpasmMatrix
readSpasmFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        spasm_fatal("cannot open .spasm file '%s'", path.c_str());
    return readSpasmFile(in, path);
}

SpasmMatrix
readSpasmFile(std::istream &in, const std::string &name)
{
    char magic[4] = {};
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        spasm_fatal("%s: not a .spasm file (bad magic)", name.c_str());
    const auto version = readPod<std::uint32_t>(in, name);
    if (version != kSpasmFileVersion) {
        spasm_fatal("%s: unsupported .spasm version %u (expected %u)",
                    name.c_str(), version, kSpasmFileVersion);
    }

    SpasmMatrix m;
    m.rows_ = readPod<std::int32_t>(in, name);
    m.cols_ = readPod<std::int32_t>(in, name);
    m.tileSize_ = readPod<std::int32_t>(in, name);
    m.nnz_ = readPod<std::int64_t>(in, name);
    m.numWords_ = readPod<std::int64_t>(in, name);
    m.paddings_ = readPod<std::int64_t>(in, name);
    if (m.rows_ < 0 || m.cols_ < 0 || m.tileSize_ < 0 ||
        m.tileSize_ > kMaxTileSize || m.nnz_ < 0 ||
        m.numWords_ < 0 || m.paddings_ < 0) {
        spasm_fatal("%s: corrupt header", name.c_str());
    }

    const auto portfolio_id = readPod<std::int32_t>(in, name);
    const auto name_len = readPod<std::uint32_t>(in, name);
    if (name_len > 4096)
        spasm_fatal("%s: corrupt portfolio name", name.c_str());
    std::string portfolio_name(name_len, '\0');
    in.read(portfolio_name.data(), name_len);
    const auto grid_size = readPod<std::int32_t>(in, name);
    if (grid_size < 2 || grid_size > 4)
        spasm_fatal("%s: corrupt grid size", name.c_str());
    const auto num_templates = readPod<std::uint32_t>(in, name);
    if (num_templates == 0 || num_templates > 16)
        spasm_fatal("%s: corrupt template count", name.c_str());
    std::vector<PatternMask> masks;
    masks.reserve(num_templates);
    for (std::uint32_t i = 0; i < num_templates; ++i)
        masks.push_back(readPod<std::uint16_t>(in, name));
    m.portfolio_ = TemplatePortfolio(
        portfolio_id, std::move(portfolio_name), std::move(masks),
        PatternGrid{grid_size});

    const auto num_tiles = readPod<std::uint64_t>(in, name);
    m.tiles_.reserve(num_tiles);
    std::int64_t words_seen = 0;
    for (std::uint64_t t = 0; t < num_tiles; ++t) {
        SpasmTile tile;
        tile.tileRowIdx = readPod<std::int32_t>(in, name);
        tile.tileColIdx = readPod<std::int32_t>(in, name);
        const auto num_words = readPod<std::uint64_t>(in, name);
        tile.words.reserve(num_words);
        for (std::uint64_t w = 0; w < num_words; ++w) {
            EncodedWord word;
            word.pos = PositionEncoding::fromRaw(
                readPod<std::uint32_t>(in, name));
            for (auto &v : word.vals)
                v = readPod<float>(in, name);
            tile.words.push_back(word);
        }
        words_seen += static_cast<std::int64_t>(num_words);
        m.tiles_.push_back(std::move(tile));
    }
    if (words_seen != m.numWords_) {
        spasm_fatal("%s: word count mismatch (header %lld, body %lld)",
                    name.c_str(),
                    static_cast<long long>(m.numWords_),
                    static_cast<long long>(words_seen));
    }
    return m;
}

} // namespace spasm
