#include "format/storage_model.hh"

#include "pattern/selection.hh"
#include "sparse/bsr.hh"
#include "sparse/csr.hh"
#include "sparse/dia.hh"
#include "sparse/ell.hh"
#include "support/logging.hh"

namespace spasm {

std::string
storageFormatName(StorageFormat f)
{
    switch (f) {
      case StorageFormat::COO:
        return "COO";
      case StorageFormat::CSR:
        return "CSR";
      case StorageFormat::BSR:
        return "BSR";
      case StorageFormat::ELL:
        return "ELL";
      case StorageFormat::DIA:
        return "DIA";
      case StorageFormat::HiSparseSerpens:
        return "HiSparse&Serpens";
      case StorageFormat::SPASM:
        return "SPASM";
    }
    spasm_panic("unknown storage format");
}

std::int64_t
storageBytes(const CooMatrix &m, StorageFormat f, Index bsr_block_size)
{
    const std::int64_t nnz = m.nnz();
    switch (f) {
      case StorageFormat::COO:
        // 32-bit row + 32-bit col + fp32 value.
        return nnz * 12;
      case StorageFormat::CSR:
        // 32-bit col + fp32 value per nnz, 32-bit row pointer per row.
        return nnz * 8 + (static_cast<std::int64_t>(m.rows()) + 1) * 4;
      case StorageFormat::BSR: {
        const BsrMatrix bsr = BsrMatrix::fromCoo(m, bsr_block_size);
        // Dense BxB values + 32-bit block col index per block, 32-bit
        // pointer per block row.
        return bsr.numBlocks() *
                   (static_cast<std::int64_t>(bsr_block_size) *
                        bsr_block_size * 4 + 4) +
               (static_cast<std::int64_t>(bsr.blockRows()) + 1) * 4;
      }
      case StorageFormat::ELL: {
        const EllMatrix ell = EllMatrix::fromCoo(m);
        // 32-bit col + fp32 value per slot, rows x width slots.
        return ell.storedValues() * 8;
      }
      case StorageFormat::DIA: {
        const DiaMatrix dia = DiaMatrix::fromCoo(m);
        // fp32 per slot plus a 32-bit offset per diagonal.
        return dia.storedValues() * 4 +
               static_cast<std::int64_t>(dia.numDiagonals()) * 4;
      }
      case StorageFormat::HiSparseSerpens:
        // Both stream 8 bytes per non-zero (packed 16-bit row index +
        // 16-bit column offset + fp32 value); first-level tile indices
        // ignored per the paper.
        return nnz * 8;
      case StorageFormat::SPASM:
        spasm_panic("SPASM storage needs an encoding or a histogram; "
                    "use the dedicated overloads");
    }
    spasm_panic("unknown storage format");
}

std::int64_t
storageBytes(const SpasmMatrix &m)
{
    return m.encodedBytes();
}

std::int64_t
spasmBytesFromHistogram(const PatternHistogram &hist,
                        const TemplatePortfolio &portfolio)
{
    const std::uint64_t instances = weightedInstances(hist, portfolio);
    const int P = portfolio.grid().size;
    return static_cast<std::int64_t>(instances) * (P + 1) * 4;
}

double
improvementOverCoo(const CooMatrix &m, StorageFormat f,
                   Index bsr_block_size)
{
    const double coo = static_cast<double>(
        storageBytes(m, StorageFormat::COO));
    const double other =
        static_cast<double>(storageBytes(m, f, bsr_block_size));
    spasm_assert(other > 0.0);
    return coo / other;
}

} // namespace spasm
