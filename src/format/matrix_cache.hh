/**
 * @file
 * Content-addressed cache of SPASM-encoded matrices.
 *
 * The paper's Table VIII amortization argument — preprocessing is
 * worth its cost because an encoded matrix is reused across many
 * SpMVs — becomes literal in `spasm serve`: the first request for a
 * matrix pays the six-stage pipeline once, every later request is a
 * cache hit that goes straight to execution.  The cache key is
 * content-addressed (a 64-bit hash of the COO triplets crossed with a
 * hash of the encoding-relevant knobs), so two requests carrying the
 * same matrix bytes share an entry regardless of how they named it.
 *
 * Entries live in a bounded in-memory LRU and, when a cache directory
 * is configured, as CRC-protected `.spasm` v2 containers on disk
 * written via `writeFileAtomic`.  Each container has a sidecar
 * `<key>.meta.json` carrying the schedule decision (hw config, tile,
 * policy, portfolio id) that the container format itself does not
 * store.  The sidecar is written *after* the container and is the
 * commit point: a container without its sidecar is an interrupted
 * write and is quarantined at the next startup scan.
 *
 * Robustness contract:
 *  - `kill -9` mid-write never poisons the cache: both files are
 *    temp+rename, and the meta-last ordering makes the pair atomic.
 *  - `scanDisk()` re-verifies every container's section CRCs at
 *    startup and *quarantines* (renames, never deletes) anything
 *    torn, with the typed reason logged — forensics stay possible.
 *  - `getOrBuild` is single-flight: N concurrent requests for the
 *    same uncached key run the expensive builder exactly once.
 *  - The returned shared_ptr is the pin: eviction skips any entry an
 *    in-flight request still holds, accepting transient overage
 *    rather than pulling an encoded stream out from under a run.
 *  - A disk entry that fails its load *after* passing the scan (bit
 *    rot, concurrent tampering) is quarantined on the spot and the
 *    builder runs transparently — callers never see the corruption.
 *
 * This layer knows nothing about hardware types: the sidecar fields
 * are plain numbers (`CacheEntryMeta`) and `core/serve` converts them
 * to an `HwConfig`, keeping format/ below hw/ in the link order.
 *
 * Obs metrics (prefix configurable, serve uses "serve.cache"):
 * `.hit`, `.hit.warm`, `.miss`, `.evict`, `.quarantine` counters and
 * an `.entries` gauge.
 */

#ifndef SPASM_FORMAT_MATRIX_CACHE_HH
#define SPASM_FORMAT_MATRIX_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "format/serialize.hh"
#include "format/spasm_matrix.hh"

namespace spasm {

class CancellationToken;
class CooMatrix;

/** Deterministic 64-bit content hash of a COO matrix (dims, nnz and
 *  every triplet, value bit patterns included). */
std::uint64_t hashMatrixContent(const CooMatrix &m);

/**
 * Incremental form of `hashMatrixContent`: `begin(rows, cols, nnz)`
 * once, `add` every canonical entry in order, `finish` for the hash.
 * Produces bit-identical keys to the one-shot function (which is
 * implemented on top of this class), so a caller that folds entries
 * as they stream past lands on the same cache entry as one that
 * hashed a materialized `CooMatrix`.  Note the canonical dims/nnz are
 * part of the hash *prefix* — a streaming producer that only learns
 * the canonical nnz at the end must hash in a single fold once the
 * matrix is assembled (what `spasm serve` does at load time).
 */
class ContentHasher
{
  public:
    void begin(Index rows, Index cols, Count nnz);
    void add(const Triplet &t);
    std::uint64_t finish() const { return h_; }

  private:
    std::uint64_t h_ = 0;
};

/** splitmix64-style mixing step, exposed so callers can fold the
 *  encoding-relevant request knobs into the key's second axis. */
std::uint64_t hashMix(std::uint64_t h, std::uint64_t v);

/** Fold a string into a hash (length-prefixed, order-sensitive). */
std::uint64_t hashString(std::uint64_t h, const std::string &s);

/** Render the two key axes as the canonical on-disk key:
 *  "<matrix-hash-hex16>-<config-hash-hex16>". */
std::string cacheKey(std::uint64_t matrix_hash,
                     std::uint64_t config_hash);

/** Schedule decision persisted in the `<key>.meta.json` sidecar —
 *  everything execute() needs that the container doesn't store. */
struct CacheEntryMeta
{
    int numPeGroups = 4;
    int numXvecCh = 1;
    double freqMhz = 252.0;
    std::string policy = "load-balanced"; ///< or "round-robin"
    int portfolioId = 0;
    std::uint64_t estCycles = 0;
    double estSeconds = 0.0;
};

/** One cached preprocessing result. */
struct EncodedMatrixEntry
{
    std::string key;
    SpasmMatrix encoded;
    CacheEntryMeta meta;
    /** True when loaded from the disk cache — this process never ran
     *  preprocessing for it (the warm-restart proof). */
    bool warm = false;
};

class EncodedMatrixCache
{
  public:
    struct Options
    {
        /** On-disk cache directory; empty = in-memory only. */
        std::string dir;
        /** In-memory LRU capacity in entries (clamped >= 1). */
        std::size_t capacity = 8;
        /** Allocation caps for untrusted disk reloads. */
        SerializeLimits limits = SerializeLimits::defaults();
        /** Obs metric prefix. */
        std::string metricPrefix = "cache";
    };

    /** What a startup scan found. */
    struct ScanReport
    {
        std::size_t usable = 0;      ///< CRC-clean entries indexed
        std::size_t quarantined = 0; ///< torn/corrupt files renamed
        std::vector<std::string> quarantinedFiles;
    };

    explicit EncodedMatrixCache(Options options);

    EncodedMatrixCache(const EncodedMatrixCache &) = delete;
    EncodedMatrixCache &operator=(const EncodedMatrixCache &) = delete;

    /**
     * Verify every `<key>.spasm` + `<key>.meta.json` pair in the
     * cache directory: section CRCs, meta JSON shape, key match.
     * Clean pairs are indexed for warm loading (lazily, on first
     * request); anything torn — container without sidecar, sidecar
     * without container, CRC mismatch, unparseable meta — is renamed
     * to `<file>.quarantined` with the reason logged.  Leftover
     * `*.tmp.*` files from a killed writer are quarantined too.
     * No-op (empty report) without a cache dir.
     */
    ScanReport scanDisk();

    /** Builds one entry on a miss; runs outside all cache locks. */
    using Builder = std::function<EncodedMatrixEntry()>;

    /** How getOrBuild satisfied one specific call. */
    enum class Outcome
    {
        Hit,      ///< found in memory (or a waiter joined a build)
        WarmLoad, ///< loaded from the disk cache, no preprocessing
        Built,    ///< the builder ran for this call
    };

    /**
     * Single-flight lookup: returns the pinned entry for @p key,
     * loading it from the disk cache (warm hit) or running @p build
     * (miss; result persisted when a dir is configured).  Concurrent
     * callers for the same key wait for the in-flight build; @p
     * cancel (optional) is polled while waiting, and a builder
     * failure is rethrown to the builder while waiters retry (one of
     * them becomes the next builder).  The returned shared_ptr pins
     * the entry against eviction for as long as the caller holds it.
     */
    std::shared_ptr<const EncodedMatrixEntry>
    getOrBuild(const std::string &key, const Builder &build,
               const CancellationToken *cancel = nullptr,
               Outcome *outcome = nullptr);

    /** Monotonic counters since construction (scan included). */
    struct Counters
    {
        std::uint64_t hits = 0;     ///< in-memory hits
        std::uint64_t warmHits = 0; ///< loaded from disk, no rebuild
        std::uint64_t misses = 0;   ///< builder invocations
        std::uint64_t evictions = 0;
        std::uint64_t quarantined = 0;
    };

    Counters counters() const;

    /** Current in-memory entry count. */
    std::size_t size() const;

    const Options &options() const { return options_; }

  private:
    struct LruSlot
    {
        std::string key;
        std::shared_ptr<const EncodedMatrixEntry> entry;
    };

    std::shared_ptr<const EncodedMatrixEntry>
    lookupLocked(const std::string &key);
    void insertAndEvict(const std::string &key,
                        std::shared_ptr<const EncodedMatrixEntry> e);
    std::shared_ptr<const EncodedMatrixEntry>
    loadFromDisk(const std::string &key);
    void quarantineFile(const std::string &path, const char *reason,
                        ScanReport *report);
    void persist(const EncodedMatrixEntry &entry);
    void bump(const char *suffix);

    Options options_;
    mutable std::mutex mutex_;
    std::condition_variable buildCv_;
    std::list<LruSlot> lru_; ///< front = most recently used
    std::map<std::string, std::list<LruSlot>::iterator> index_;
    std::set<std::string> building_;
    std::set<std::string> diskKeys_; ///< scan-verified, not yet loaded
    Counters counters_;
};

} // namespace spasm

#endif // SPASM_FORMAT_MATRIX_CACHE_HH
