/**
 * @file
 * The 32-bit SPASM position-encoding word (section III, Fig. 5).
 *
 * Field layout (LSB first):
 *   [12:0]  c_idx : column index of the 4-wide submatrix inside the tile
 *   [25:13] r_idx : row index of the 4-tall submatrix inside the tile
 *   [26]    CE    : last word of the current tile (switch x buffer)
 *   [27]    RE    : last word of the current tile row (flush y psums)
 *   [31:28] t_idx : template identifier (selects the VALU opcode)
 *
 * One word is shared by a set of four values, so a template instance
 * costs (4 + 1) * 4 bytes.  The 13-bit submatrix indices bound the tile
 * size at 2^13 * 4 = 32768.
 */

#ifndef SPASM_FORMAT_POSITION_ENCODING_HH
#define SPASM_FORMAT_POSITION_ENCODING_HH

#include <cstdint>

#include "support/bits.hh"
#include "support/logging.hh"

namespace spasm {

/** Maximum tile edge length representable by the 13-bit indices. */
constexpr std::int64_t kMaxTileSize = (1 << 13) * 4; // 32768

/** Packed 32-bit position-encoding word. */
class PositionEncoding
{
  public:
    PositionEncoding() = default;

    /** Pack the fields; all must be in range (library bug if not). */
    PositionEncoding(std::uint32_t c_idx, std::uint32_t r_idx, bool ce,
                     bool re, std::uint32_t t_idx)
    {
        spasm_assert(c_idx < (1u << 13));
        spasm_assert(r_idx < (1u << 13));
        spasm_assert(t_idx < (1u << 4));
        word_ = c_idx | (r_idx << 13) |
            (static_cast<std::uint32_t>(ce) << 26) |
            (static_cast<std::uint32_t>(re) << 27) | (t_idx << 28);
    }

    /** Reinterpret a raw word (e.g. from a value stream). */
    static PositionEncoding
    fromRaw(std::uint32_t word)
    {
        PositionEncoding pe;
        pe.word_ = word;
        return pe;
    }

    std::uint32_t raw() const { return word_; }

    std::uint32_t cIdx() const { return bitField(word_, 0, 13); }
    std::uint32_t rIdx() const { return bitField(word_, 13, 13); }
    bool ce() const { return testBit(word_, 26); }
    bool re() const { return testBit(word_, 27); }
    std::uint32_t tIdx() const { return bitField(word_, 28, 4); }

    /** Copy with the CE/RE bits replaced (encoder finalization). */
    PositionEncoding
    withFlags(bool ce, bool re) const
    {
        PositionEncoding pe;
        pe.word_ = insertBitField(word_, 26, 1, ce ? 1 : 0);
        pe.word_ = insertBitField(pe.word_, 27, 1, re ? 1 : 0);
        return pe;
    }

    friend bool
    operator==(const PositionEncoding &a, const PositionEncoding &b)
    {
        return a.word_ == b.word_;
    }

  private:
    std::uint32_t word_ = 0;
};

} // namespace spasm

#endif // SPASM_FORMAT_POSITION_ENCODING_HH
