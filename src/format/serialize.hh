/**
 * @file
 * Binary serialization of SPASM-encoded matrices (.spasm files).
 *
 * Preprocessing is the expensive part of the SPASM workflow
 * (Table VIII); persisting the encoded stream lets deployments pay it
 * once per matrix and reload in milliseconds — the amortization model
 * the paper's section V-E4 argues for.
 *
 * Container layout v2 (little-endian).  Every section is length-
 * prefixed and CRC32-protected so a flipped bit or a truncated
 * transfer is *detected* at load time with a byte-offset diagnostic
 * instead of propagating into the simulator:
 *
 *   magic "SPSM" | u32 version
 *   3 sections, in order:
 *     u32 tag ("HDR ", "PRT ", "TIL ") | u64 payload length |
 *     payload bytes | u32 crc32(payload)
 *
 *   HDR payload: i32 rows, cols, tileSize | i64 nnz, numWords,
 *                paddings | u64 tile count
 *   PRT payload: i32 id | u32 name length + bytes | i32 grid size |
 *                u32 template count | u16 masks[]
 *   TIL payload: per tile: i32 tileRowIdx, tileColIdx |
 *                u64 word count | words (u32 pos + 4 x f32 values)
 *
 * All read errors throw a recoverable typed `spasm::Error`
 * (support/error.hh) — never abort — and declared sizes are validated
 * against both the section length and explicit allocation caps
 * (`SerializeLimits`) before any buffer is sized, so a corrupt header
 * cannot trigger a multi-GB allocation or a size*sizeof overflow.
 */

#ifndef SPASM_FORMAT_SERIALIZE_HH
#define SPASM_FORMAT_SERIALIZE_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "format/spasm_matrix.hh"

namespace spasm {

/** Current .spasm file format version.  v2 added length-prefixed,
 *  CRC32-checksummed sections; v1 files are rejected with a typed
 *  error asking for a re-encode. */
constexpr std::uint32_t kSpasmFileVersion = 2;

/**
 * Allocation caps applied while reading untrusted .spasm input.  A
 * declared size beyond a cap throws ErrorCode::LimitExceeded before
 * any memory is reserved.  Structural caps (a tile needs >= 16
 * payload bytes, a word exactly 20) are always enforced in addition.
 */
struct SerializeLimits
{
    /** Max bytes in one section payload (default 256 MiB). */
    std::uint64_t maxSectionBytes = 1ull << 28;

    /** Max tile count (default 2^24). */
    std::uint64_t maxTiles = 1ull << 24;

    /** Max portfolio-name length in bytes. */
    std::uint32_t maxNameBytes = 4096;

    static const SerializeLimits &defaults();
};

/** Write @p m to @p path; throws spasm::Error on I/O failure. */
void writeSpasmFile(const SpasmMatrix &m, const std::string &path);

/** Write to a stream; throws spasm::Error on I/O failure. */
void writeSpasmFile(const SpasmMatrix &m, std::ostream &out);

/** Read a .spasm file; throws spasm::Error on malformed input. */
SpasmMatrix readSpasmFile(const std::string &path,
                          const SerializeLimits &limits =
                              SerializeLimits::defaults());

/** Read from a stream (name used in diagnostics). */
SpasmMatrix readSpasmFile(std::istream &in, const std::string &name);

/** Read from a stream with explicit allocation caps. */
SpasmMatrix readSpasmFile(std::istream &in, const std::string &name,
                          const SerializeLimits &limits);

} // namespace spasm

#endif // SPASM_FORMAT_SERIALIZE_HH
