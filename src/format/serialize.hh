/**
 * @file
 * Binary serialization of SPASM-encoded matrices (.spasm files).
 *
 * Preprocessing is the expensive part of the SPASM workflow
 * (Table VIII); persisting the encoded stream lets deployments pay it
 * once per matrix and reload in milliseconds — the amortization model
 * the paper's section V-E4 argues for.
 *
 * Layout (little-endian):
 *   magic "SPSM" | u32 version
 *   i32 rows, cols, tileSize | i64 nnz, numWords, paddings
 *   portfolio: i32 id | u32 name length + bytes | i32 grid size |
 *              u32 template count | u16 masks[]
 *   u64 tile count | per tile: i32 tileRowIdx, tileColIdx |
 *              u64 word count | words (u32 pos + 4 x f32 values)
 */

#ifndef SPASM_FORMAT_SERIALIZE_HH
#define SPASM_FORMAT_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "format/spasm_matrix.hh"

namespace spasm {

/** Current .spasm file format version. */
constexpr std::uint32_t kSpasmFileVersion = 1;

/** Write @p m to @p path; fatal() on I/O failure. */
void writeSpasmFile(const SpasmMatrix &m, const std::string &path);

/** Write to a stream. */
void writeSpasmFile(const SpasmMatrix &m, std::ostream &out);

/** Read a .spasm file; fatal() on malformed input. */
SpasmMatrix readSpasmFile(const std::string &path);

/** Read from a stream (name used in diagnostics). */
SpasmMatrix readSpasmFile(std::istream &in, const std::string &name);

} // namespace spasm

#endif // SPASM_FORMAT_SERIALIZE_HH
