#include "format/spill.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "sparse/coo.hh"
#include "support/bits.hh"
#include "support/cancellation.hh"
#include "support/crc32.hh"
#include "support/error.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/memory_budget.hh"
#include "support/obs.hh"
#include "support/telemetry.hh"

namespace fs = std::filesystem;

namespace spasm {

namespace {

constexpr std::uint32_t kFrameMagic = 0x4c495053; // "SPIL"

/** Test-only knob: sleep this many ms inside every flush, so a CI
 *  crash test can land its `kill -9` while spill temps exist.  Never
 *  set outside tests (documented in docs/ingestion.md). */
int
testFlushDelayMs()
{
    static const int delay = [] {
        const char *env = std::getenv("SPASM_INGEST_TEST_FLUSH_DELAY_MS");
        return env != nullptr ? std::atoi(env) : 0;
    }();
    return delay;
}

std::uint64_t
frameSite(std::size_t bucket, std::uint32_t frame)
{
    return (static_cast<std::uint64_t>(bucket) << 32) | frame;
}

} // namespace

const char *
spillFaultName(SpillFault fault)
{
    switch (fault) {
      case SpillFault::None:
        return "none";
      case SpillFault::ShortWrite:
        return "short-write";
      case SpillFault::NoSpace:
        return "no-space";
      case SpillFault::CorruptRead:
        return "corrupt-read";
    }
    return "unknown";
}

std::vector<std::string>
sweepSpillDir(const std::string &dir)
{
    std::vector<std::string> quarantined;
    std::error_code ec;
    if (dir.empty() || !fs::is_directory(dir, ec))
        return quarantined;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("spill-", 0) != 0 ||
            name.size() < 4 ||
            name.compare(name.size() - 4, 4, ".tmp") != 0) {
            continue;
        }
        const std::string from = entry.path().string();
        const std::string to = from + ".quarantined";
        std::error_code rename_ec;
        fs::rename(from, to, rename_ec);
        if (rename_ec) {
            logWarn("ingest", "spill sweep: cannot quarantine %s: %s",
                     from.c_str(), rename_ec.message().c_str());
            continue;
        }
        logWarn("ingest", "spill sweep: quarantined orphaned spill file %s "
                 "(previous process died mid-spill)", name.c_str());
        quarantined.push_back(to);
        if (obs::enabled())
            obs::Registry::global().add("ingest.spill.quarantined");
    }
    return quarantined;
}

SpillTiler::SpillTiler(const SpasmEncoder &encoder, SpillOptions options)
    : options_(std::move(options)), encoder_(encoder)
{
    if (options_.dir.empty())
        spasm_fatal("SpillTiler requires a spill directory");
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    if (ec) {
        throw Error::atInput(ErrorCode::Io, options_.dir,
                             "cannot create spill directory: %s",
                             ec.message().c_str());
    }
    // A budget ceiling overrides the configured flush threshold: the
    // whole point of spilling is to stay inside the reservation, so
    // buffer at most a quarter of it before flushing (leaving room
    // for the chunk window and the per-block merge).
    if (options_.budget != nullptr && options_.budget->limit() > 0) {
        options_.flushBytes = std::min<std::int64_t>(
            options_.flushBytes, options_.budget->limit() / 4);
    }
    if (options_.flushBytes < (1 << 16))
        options_.flushBytes = 1 << 16;
    if (options_.targetBuckets < 1)
        options_.targetBuckets = 1;
}

SpillTiler::~SpillTiler()
{
    // Release any still-charged buffer bytes (finish() not reached or
    // it threw); spill files are deliberately left behind on failure
    // for the next startup sweep to quarantine.
    if (options_.budget != nullptr && chargedBytes_ > 0)
        options_.budget->release(chargedBytes_);
}

std::string
SpillTiler::bucketPath(std::size_t bucket) const
{
    return options_.dir + "/spill-" + std::to_string(::getpid()) +
        "-b" + std::to_string(bucket) + ".tmp";
}

void
SpillTiler::onHeader(Index rows, Index cols, Count declared_nnz)
{
    (void)declared_nnz;
    rows_ = rows;
    cols_ = cols;
    const Index T = encoder_.tileSize();
    const Index tile_rows = static_cast<Index>(ceilDiv(rows, T));
    const Index blocks_wanted = std::min<Index>(
        static_cast<Index>(options_.targetBuckets),
        std::max<Index>(tile_rows, 1));
    const Index tile_rows_per_block =
        static_cast<Index>(ceilDiv(std::max<Index>(tile_rows, 1),
                                   blocks_wanted));
    blockRows_ = tile_rows_per_block * T;
    const auto num_buckets =
        static_cast<std::size_t>(ceilDiv(rows, blockRows_));
    buffers_.assign(std::max<std::size_t>(num_buckets, 1), {});
    framesPerBucket_.assign(buffers_.size(), 0);
}

void
SpillTiler::onTriplets(std::vector<Triplet> &&batch)
{
    spasm_assert(!finished_ && blockRows_ > 0);
    const std::int64_t batch_bytes =
        static_cast<std::int64_t>(batch.size() * sizeof(Triplet));
    if (options_.budget != nullptr) {
        options_.budget->charge(batch_bytes, "ingest.spill-buffers");
        chargedBytes_ += batch_bytes;
    }
    for (const Triplet &t : batch) {
        const auto bucket =
            static_cast<std::size_t>(t.row / blockRows_);
        buffers_[bucket].push_back(t);
    }
    bufferedBytes_ += batch_bytes;
    batch.clear();
    batch.shrink_to_fit();
    if (bufferedBytes_ >= options_.flushBytes)
        flushAll();
}

void
SpillTiler::writeFrame(std::size_t bucket,
                       const std::vector<Triplet> &triplets)
{
    const std::uint64_t site =
        frameSite(bucket, framesPerBucket_[bucket]);
    SpillFault fault = SpillFault::None;
    if (options_.fault) {
        fault = options_.fault(site);
        if (fault != SpillFault::None)
            ++stats_.injectedFaults;
    }
    if (fault == SpillFault::NoSpace) {
        throw Error::atInput(ErrorCode::Io, bucketPath(bucket),
                             "no space left on device writing spill "
                             "frame %u (injected)",
                             framesPerBucket_[bucket]);
    }
    if (fault == SpillFault::CorruptRead)
        corruptOnRead_.push_back(site);

    std::size_t payload_bytes = triplets.size() * sizeof(Triplet);
    const std::uint32_t crc = crc32(triplets.data(), payload_bytes);
    if (fault == SpillFault::ShortWrite && payload_bytes > 0) {
        // Torn-write model: the frame header promises more payload
        // than lands on disk.  The reader's short-read check (not the
        // CRC) catches it, same as a real kill -9 mid-write.
        payload_bytes -= std::min<std::size_t>(payload_bytes,
                                               sizeof(Triplet));
    }

    const std::string path = bucketPath(bucket);
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) {
        throw Error::atInput(ErrorCode::Io, path,
                             "cannot open spill file for append");
    }
    const std::uint32_t header[4] = {
        kFrameMagic, static_cast<std::uint32_t>(bucket),
        static_cast<std::uint32_t>(triplets.size()), crc};
    out.write(reinterpret_cast<const char *>(header), sizeof(header));
    out.write(reinterpret_cast<const char *>(triplets.data()),
              static_cast<std::streamsize>(payload_bytes));
    out.flush();
    if (!out) {
        throw Error::atInput(ErrorCode::Io, path,
                             "short write appending spill frame %u",
                             framesPerBucket_[bucket]);
    }
    ++framesPerBucket_[bucket];
    ++stats_.frames;
    stats_.spillBytes += sizeof(header) + payload_bytes;
    stats_.spilledTriplets += triplets.size();
}

void
SpillTiler::flushAll()
{
    if (bufferedBytes_ == 0)
        return;
    if (testFlushDelayMs() > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(testFlushDelayMs()));
    }
    if (options_.cancel != nullptr)
        options_.cancel->throwIfCancelled("ingest.spill");
    for (std::size_t b = 0; b < buffers_.size(); ++b) {
        if (buffers_[b].empty())
            continue;
        writeFrame(b, buffers_[b]);
        buffers_[b].clear();
        buffers_[b].shrink_to_fit();
    }
    spilled_ = true;
    ++stats_.flushes;
    if (options_.budget != nullptr && chargedBytes_ > 0) {
        options_.budget->release(chargedBytes_);
        chargedBytes_ = 0;
    }
    bufferedBytes_ = 0;
    if (auto *live = telemetry::liveIngestActive()) {
        live->spillBytes.store(stats_.spillBytes,
                               std::memory_order_relaxed);
        live->spillFlushes.store(stats_.flushes,
                                 std::memory_order_relaxed);
    }
}

std::vector<Triplet>
SpillTiler::readBucket(std::size_t bucket)
{
    std::vector<Triplet> triplets;
    const std::string path = bucketPath(bucket);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error::atInput(ErrorCode::Io, path,
                             "cannot reopen spill file");
    }
    for (std::uint32_t frame = 0; frame < framesPerBucket_[bucket];
         ++frame) {
        std::uint32_t header[4] = {0, 0, 0, 0};
        in.read(reinterpret_cast<char *>(header), sizeof(header));
        if (static_cast<std::size_t>(in.gcount()) != sizeof(header)) {
            throw Error::atInput(ErrorCode::Truncated, path,
                                 "spill frame %u: short read in frame "
                                 "header", frame);
        }
        if (header[0] != kFrameMagic) {
            throw Error::atInput(ErrorCode::BadMagic, path,
                                 "spill frame %u: bad frame magic "
                                 "0x%08x", frame, header[0]);
        }
        if (header[1] != static_cast<std::uint32_t>(bucket)) {
            throw Error::atInput(ErrorCode::Invariant, path,
                                 "spill frame %u: bucket id %u does "
                                 "not match file bucket %u", frame,
                                 header[1],
                                 static_cast<std::uint32_t>(bucket));
        }
        const std::size_t count = header[2];
        const std::size_t base = triplets.size();
        triplets.resize(base + count);
        const std::size_t payload_bytes = count * sizeof(Triplet);
        in.read(reinterpret_cast<char *>(triplets.data() + base),
                static_cast<std::streamsize>(payload_bytes));
        if (static_cast<std::size_t>(in.gcount()) != payload_bytes) {
            throw Error::atInput(ErrorCode::Truncated, path,
                                 "spill frame %u: short read (%ld of "
                                 "%ld payload bytes)", frame,
                                 static_cast<long>(in.gcount()),
                                 static_cast<long>(payload_bytes));
        }
        const std::uint64_t site = frameSite(bucket, frame);
        if (std::find(corruptOnRead_.begin(), corruptOnRead_.end(),
                      site) != corruptOnRead_.end() &&
            payload_bytes > 0) {
            // Injected read-side corruption: flip one payload byte
            // before the CRC check sees it.
            reinterpret_cast<unsigned char *>(
                triplets.data() + base)[payload_bytes / 2] ^= 0x40;
        }
        const std::uint32_t crc =
            crc32(triplets.data() + base, payload_bytes);
        if (crc != header[3]) {
            throw Error::atInput(ErrorCode::ChecksumMismatch, path,
                                 "spill frame %u: payload CRC "
                                 "mismatch (stored 0x%08x, computed "
                                 "0x%08x)", frame, header[3], crc);
        }
    }
    return triplets;
}

SpasmMatrix
SpillTiler::finish()
{
    spasm_assert(!finished_);
    finished_ = true;

    SpasmEncodeStream stream(encoder_, rows_, cols_);
    Count nnz = 0;
    for (std::size_t b = 0; b < buffers_.size(); ++b) {
        if (options_.cancel != nullptr)
            options_.cancel->throwIfCancelled("ingest.merge");
        std::vector<Triplet> block;
        if (framesPerBucket_[b] > 0) {
            block = readBucket(b);
            // In-memory leftovers of this bucket arrived after every
            // spilled frame, so appending them preserves the global
            // arrival order fromTriplets' stable coalesce depends on.
            block.insert(block.end(), buffers_[b].begin(),
                         buffers_[b].end());
        } else {
            block = std::move(buffers_[b]);
        }
        buffers_[b].clear();
        buffers_[b].shrink_to_fit();
        if (block.empty())
            continue;
        ++stats_.buckets;
        MemoryReservation block_charge(
            options_.budget,
            static_cast<std::int64_t>(block.size() * sizeof(Triplet)),
            "ingest.merge-block");
        auto coo = CooMatrix::fromTriplets(rows_, cols_,
                                           std::move(block));
        nnz += coo.nnz();
        stream.appendRowBlock(coo.entries());
    }
    if (options_.budget != nullptr && chargedBytes_ > 0) {
        options_.budget->release(chargedBytes_);
        chargedBytes_ = 0;
    }
    bufferedBytes_ = 0;
    SpasmMatrix out = stream.finish(nnz);

    // Success: our spill files are spent; remove them (failure paths
    // leave them for the startup sweep to quarantine).
    for (std::size_t b = 0; b < framesPerBucket_.size(); ++b) {
        if (framesPerBucket_[b] == 0)
            continue;
        std::error_code ec;
        fs::remove(bucketPath(b), ec);
        if (ec) {
            logWarn("ingest", "cannot remove spent spill file %s: %s",
                     bucketPath(b).c_str(), ec.message().c_str());
        }
    }
    return out;
}

namespace {

/**
 * The graceful-degradation sink: accumulate triplets in memory
 * (budget-charged) exactly like the plain streamed read; on the first
 * `BudgetExceeded` — and only when a spill dir is configured — stand
 * up a `SpillTiler`, replay every buffered batch into it in arrival
 * order, release the memory and keep going out-of-core.
 */
class AdaptiveSink final : public TripletSink
{
  public:
    AdaptiveSink(const SpasmEncoder &encoder,
                 const IngestEncodeOptions &options)
        : encoder_(encoder), options_(options)
    {
    }

    ~AdaptiveSink() override
    {
        if (options_.spill.budget != nullptr && chargedBytes_ > 0)
            options_.spill.budget->release(chargedBytes_);
    }

    void onHeader(Index rows, Index cols, Count declared_nnz) override
    {
        rows_ = rows;
        cols_ = cols;
        declared_ = declared_nnz;
        if (options_.forceSpill && !options_.spill.dir.empty())
            degradeToSpill();
        if (tiler_ != nullptr)
            tiler_->onHeader(rows, cols, declared_nnz);
    }

    void onTriplets(std::vector<Triplet> &&batch) override
    {
        if (tiler_ != nullptr) {
            tiler_->onTriplets(std::move(batch));
            return;
        }
        const std::int64_t bytes =
            static_cast<std::int64_t>(batch.size() * sizeof(Triplet));
        if (options_.spill.budget != nullptr) {
            try {
                options_.spill.budget->charge(bytes,
                                              "ingest.triplets");
            } catch (const Error &e) {
                if (e.code() != ErrorCode::BudgetExceeded ||
                    options_.spill.dir.empty()) {
                    throw;
                }
                logWarn("ingest", "ingest: triplet buffer exceeds the memory "
                         "budget; degrading to out-of-core spill in "
                         "%s", options_.spill.dir.c_str());
                degradeToSpill();
                tiler_->onHeader(rows_, cols_, declared_);
                for (auto &buffered : batches_)
                    tiler_->onTriplets(std::move(buffered));
                batches_.clear();
                tiler_->onTriplets(std::move(batch));
                return;
            }
            chargedBytes_ += bytes;
        }
        batches_.push_back(std::move(batch));
    }

    /** Encode whichever representation we ended up with. */
    SpasmMatrix finish(IngestEncodeResult *result)
    {
        if (tiler_ != nullptr) {
            SpasmMatrix out = tiler_->finish();
            result->spill = tiler_->stats();
            result->spilled = true;
            return out;
        }
        std::vector<Triplet> all;
        std::size_t total = 0;
        for (const auto &b : batches_)
            total += b.size();
        all.reserve(total);
        for (auto &b : batches_) {
            all.insert(all.end(), b.begin(), b.end());
            b.clear();
            b.shrink_to_fit();
        }
        batches_.clear();
        auto coo = CooMatrix::fromTriplets(rows_, cols_,
                                           std::move(all));
        SpasmMatrix out = encoder_.encode(coo);
        if (options_.spill.budget != nullptr && chargedBytes_ > 0) {
            options_.spill.budget->release(chargedBytes_);
            chargedBytes_ = 0;
        }
        return out;
    }

  private:
    void degradeToSpill()
    {
        if (obs::enabled())
            obs::Registry::global().add("ingest.spill.engaged");
        tiler_ = std::make_unique<SpillTiler>(encoder_,
                                              options_.spill);
        if (options_.spill.budget != nullptr && chargedBytes_ > 0) {
            // The tiler re-charges what it buffers itself; our
            // accumulated charge is handed over via the replay.
            options_.spill.budget->release(chargedBytes_);
            chargedBytes_ = 0;
        }
    }

    const SpasmEncoder &encoder_;
    const IngestEncodeOptions &options_;
    std::unique_ptr<SpillTiler> tiler_;
    std::vector<std::vector<Triplet>> batches_;
    Index rows_ = 0;
    Index cols_ = 0;
    Count declared_ = 0;
    std::int64_t chargedBytes_ = 0;
};

} // namespace

IngestEncodeResult
ingestEncodeMatrixMarket(const std::string &path,
                         const SpasmEncoder &encoder,
                         const IngestEncodeOptions &options)
{
    IngestEncodeResult result;
    AdaptiveSink sink(encoder, options);
    StreamIngestOptions stream = options.stream;
    if (stream.budget == nullptr)
        stream.budget = options.spill.budget;
    streamMatrixMarket(path, stream, sink, &result.parse);
    result.matrix = sink.finish(&result);
    return result;
}

void
writeIngestJson(std::ostream &os, const std::string &input,
                const IngestEncodeResult &result,
                std::int64_t peak_budget_bytes)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "spasm-ingest-v1");
    w.field("input", input);
    w.field("rows", result.matrix.rows());
    w.field("cols", result.matrix.cols());
    w.field("nnz", result.matrix.nnz());
    w.field("parse_bytes", result.parse.bytes);
    w.field("parse_lines", result.parse.lines);
    w.field("parse_entries", result.parse.entries);
    w.field("parse_triplets", result.parse.triplets);
    w.field("parse_chunks", result.parse.chunks);
    w.field("parse_windows", result.parse.windows);
    w.field("payload_crc32", result.parse.payloadCrc32);
    w.field("spilled", result.spilled);
    w.field("spill_bytes", result.spill.spillBytes);
    w.field("spill_frames", result.spill.frames);
    w.field("spill_flushes", result.spill.flushes);
    w.field("spill_buckets", result.spill.buckets);
    w.field("spill_triplets", result.spill.spilledTriplets);
    w.field("injected_faults", result.spill.injectedFaults);
    w.field("encoded_words", result.matrix.numWords());
    w.field("padding_rate", result.matrix.paddingRate());
    w.field("peak_budget_bytes", peak_budget_bytes);
    w.endObject();
    w.finish();
}

} // namespace spasm
