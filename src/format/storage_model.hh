/**
 * @file
 * Storage-cost models for the format comparison (Fig. 11, Table VI).
 *
 * Conventions follow section V-D of the paper: indices in COO/CSR/BSR
 * are 32-bit ints, values are fp32, the HiSparse/Serpens streaming
 * formats cost 8 bytes per non-zero, and first-level tile indices are
 * ignored for every two-level format (they are negligible).
 */

#ifndef SPASM_FORMAT_STORAGE_MODEL_HH
#define SPASM_FORMAT_STORAGE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "format/spasm_matrix.hh"
#include "pattern/analysis.hh"
#include "sparse/coo.hh"

namespace spasm {

/** Identifiers for the formats in the comparison. */
enum class StorageFormat
{
    COO,
    CSR,
    BSR,
    ELL,
    DIA,
    HiSparseSerpens,
    SPASM,
};

/** Display name of a format. */
std::string storageFormatName(StorageFormat f);

/** Byte cost of @p m in the classic formats (not SPASM). */
std::int64_t storageBytes(const CooMatrix &m, StorageFormat f,
                          Index bsr_block_size = 2);

/** Byte cost of an already-encoded SPASM matrix. */
std::int64_t storageBytes(const SpasmMatrix &m);

/**
 * Byte cost of the SPASM encoding implied by a pattern histogram and a
 * portfolio, without materializing the encoding: instances * (P+1) * 4.
 * Used for the tile-size-free studies (Fig. 9 / Fig. 10).
 */
std::int64_t spasmBytesFromHistogram(const PatternHistogram &hist,
                                     const TemplatePortfolio &portfolio);

/** Storage improvement of @p f over COO (paper's normalization). */
double improvementOverCoo(const CooMatrix &m, StorageFormat f,
                          Index bsr_block_size = 2);

} // namespace spasm

#endif // SPASM_FORMAT_STORAGE_MODEL_HH
