#include "format/spasm_matrix.hh"

#include <algorithm>
#include <map>

#include "pattern/decompose.hh"
#include "support/logging.hh"

namespace spasm {

double
SpasmMatrix::paddingRate() const
{
    const Count stored =
        numWords_ * static_cast<Count>(portfolio_.grid().size);
    if (stored == 0)
        return 0.0;
    return static_cast<double>(paddings_) / static_cast<double>(stored);
}

std::int64_t
SpasmMatrix::encodedBytes() const
{
    const int P = portfolio_.grid().size;
    return numWords_ * static_cast<std::int64_t>(P + 1) * 4;
}

std::int64_t
SpasmMatrix::tileIndexBytes() const
{
    return static_cast<std::int64_t>(tiles_.size()) * 8;
}

Index
SpasmMatrix::numTileRows() const
{
    if (tileSize_ == 0)
        return 0;
    return static_cast<Index>(ceilDiv(rows_, tileSize_));
}

void
SpasmMatrix::execute(const std::vector<Value> &x,
                     std::vector<Value> &y) const
{
    spasm_assert(static_cast<Index>(x.size()) == cols_);
    spasm_assert(static_cast<Index>(y.size()) == rows_);
    const int P = portfolio_.grid().size;
    for (const auto &tile : tiles_) {
        const Index row_base = tile.tileRowIdx * tileSize_;
        const Index col_base = tile.tileColIdx * tileSize_;
        for (const auto &word : tile.words) {
            const auto &temp =
                portfolio_.templates()[word.pos.tIdx()];
            const Index sub_row =
                row_base + static_cast<Index>(word.pos.rIdx()) * P;
            const Index sub_col =
                col_base + static_cast<Index>(word.pos.cIdx()) * P;
            for (int j = 0; j < temp.length(); ++j) {
                const auto &cell = temp.cells()[j];
                const Index r = sub_row + cell.row;
                const Index c = sub_col + cell.col;
                // Template cells may overhang the matrix edge when a
                // dimension is not a multiple of the grid size; those
                // lanes are zero paddings by construction (only
                // actual entries get responsibility cells).
                if (r >= rows_ || c >= cols_) {
                    spasm_assert(word.vals[j] == 0.0f);
                    continue;
                }
                y[r] += word.vals[j] * x[c];
            }
        }
    }
}

CooMatrix
SpasmMatrix::toCoo() const
{
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<std::size_t>(nnz_));
    const int P = portfolio_.grid().size;
    for (const auto &tile : tiles_) {
        const Index row_base = tile.tileRowIdx * tileSize_;
        const Index col_base = tile.tileColIdx * tileSize_;
        for (const auto &word : tile.words) {
            const auto &temp =
                portfolio_.templates()[word.pos.tIdx()];
            const Index sub_row =
                row_base + static_cast<Index>(word.pos.rIdx()) * P;
            const Index sub_col =
                col_base + static_cast<Index>(word.pos.cIdx()) * P;
            for (int j = 0; j < temp.length(); ++j) {
                if (word.vals[j] == 0.0f)
                    continue;
                const auto &cell = temp.cells()[j];
                triplets.emplace_back(sub_row + cell.row,
                                      sub_col + cell.col, word.vals[j]);
            }
        }
    }
    return CooMatrix::fromTriplets(rows_, cols_, std::move(triplets));
}

SpasmEncoder::SpasmEncoder(TemplatePortfolio portfolio, Index tile_size,
                           bool interleave_rows)
    : portfolio_(std::move(portfolio)), tileSize_(tile_size),
      interleaveRows_(interleave_rows)
{
    const int P = portfolio_.grid().size;
    if (tile_size <= 0 || tile_size % P != 0) {
        spasm_fatal("tile size %d must be a positive multiple of the "
                    "grid size %d", tile_size, P);
    }
    if (tile_size / P > (1 << 13)) {
        spasm_fatal("tile size %d exceeds the 13-bit submatrix index "
                    "range (max %ld)", tile_size,
                    static_cast<long>(kMaxTileSize));
    }
}

SpasmMatrix
SpasmEncoder::encode(const CooMatrix &m) const
{
    // One-shot encode is the single-block special case of the
    // streaming encoder, so the two paths share every byte of logic.
    SpasmEncodeStream stream(*this, m.rows(), m.cols());
    stream.appendRowBlock(m.entries());
    return stream.finish(m.nnz());
}

SpasmEncodeStream::SpasmEncodeStream(const SpasmEncoder &encoder,
                                     Index rows, Index cols)
    : encoder_(encoder),
      decomposer_(std::make_unique<Decomposer>(encoder.portfolio()))
{
    out_.rows_ = rows;
    out_.cols_ = cols;
    out_.tileSize_ = encoder.tileSize();
    out_.portfolio_ = encoder.portfolio();
    numTileCols_ = static_cast<Index>(
        ceilDiv(std::max<Index>(cols, 1), encoder.tileSize()));
}

SpasmEncodeStream::~SpasmEncodeStream() = default;

void
SpasmEncodeStream::closeTile(bool row_end)
{
    if (!tileOpen_)
        return;
    spasm_assert(!current_.words.empty());
    if (encoder_.interleaveRows()) {
        // Hazard-aware word scheduling: bucket the tile's words
        // by r_idx and emit round-robin across buckets, so
        // back-to-back words update different partial-sum rows.
        std::map<std::uint32_t, std::vector<EncodedWord>> rows;
        for (const auto &word : current_.words)
            rows[word.pos.rIdx()].push_back(word);
        std::vector<EncodedWord> reordered;
        reordered.reserve(current_.words.size());
        bool emitted = true;
        for (std::size_t k = 0; emitted; ++k) {
            emitted = false;
            for (auto &[r, bucket] : rows) {
                if (k < bucket.size()) {
                    reordered.push_back(bucket[k]);
                    emitted = true;
                }
            }
        }
        spasm_assert(reordered.size() == current_.words.size());
        current_.words = std::move(reordered);
    }
    auto &last = current_.words.back();
    last.pos = last.pos.withFlags(true, row_end);
    out_.tiles_.push_back(std::move(current_));
    current_ = SpasmTile{};
    tileOpen_ = false;
}

void
SpasmEncodeStream::appendRowBlock(const std::vector<Triplet> &entries)
{
    spasm_assert(!finished_);
    const int P = out_.portfolio_.grid().size;
    const Index T = out_.tileSize_;
    const Index num_tile_cols = numTileCols_;

    // Sort entry indices by (tile, submatrix) so tiles stream in
    // row-block-major order and submatrix cells are contiguous.
    auto key_of = [&](const Triplet &t) -> std::uint64_t {
        const std::uint64_t tile =
            static_cast<std::uint64_t>(t.row / T) * num_tile_cols +
            static_cast<std::uint64_t>(t.col / T);
        spasm_assert(tile < (1ULL << 37));
        const std::uint64_t sub_r = (t.row % T) / P;
        const std::uint64_t sub_c = (t.col % T) / P;
        return (tile << 26) | (sub_r << 13) | sub_c;
    };
    std::vector<std::uint32_t> order(entries.size());
    for (std::uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return key_of(entries[a]) < key_of(entries[b]);
              });

    const PatternGrid &grid = out_.portfolio_.grid();
    Value cell_vals[16];

    std::size_t i = 0;
    while (i < order.size()) {
        const Triplet &head = entries[order[i]];
        const Index tr = head.row / T;
        const Index tc = head.col / T;
        const Index sub_r = (head.row % T) / P;
        const Index sub_c = (head.col % T) / P;

        // Blocks must extend the global row-block-major stream:
        // out-of-order blocks would scramble tile order silently.
        const std::uint64_t group_key = key_of(head);
        spasm_assert(out_.numWords_ == 0 || group_key >= lastKey_);
        lastKey_ = group_key;

        // Gather this submatrix's occupancy mask and cell values.
        PatternMask mask = 0;
        std::size_t j = i;
        while (j < order.size()) {
            const Triplet &t = entries[order[j]];
            if (t.row / T != tr || t.col / T != tc ||
                (t.row % T) / P != sub_r || (t.col % T) / P != sub_c) {
                break;
            }
            const int bit = grid.bitOf(t.row % P, t.col % P);
            mask = static_cast<PatternMask>(mask | (1u << bit));
            cell_vals[bit] = t.val;
            ++j;
        }
        i = j;

        // Tile boundary bookkeeping: previous tile (if any) is closed
        // with CE, and additionally RE when its tile row ended.
        if (tileOpen_ &&
            (current_.tileRowIdx != tr || current_.tileColIdx != tc)) {
            closeTile(current_.tileRowIdx != tr);
        }
        if (!tileOpen_) {
            current_.tileRowIdx = tr;
            current_.tileColIdx = tc;
            tileOpen_ = true;
        }

        for (const auto &inst : decomposer_->instances(mask)) {
            const auto &temp =
                out_.portfolio_.templates()[inst.templateId];
            EncodedWord word;
            word.pos = PositionEncoding(
                static_cast<std::uint32_t>(sub_c),
                static_cast<std::uint32_t>(sub_r), false, false,
                inst.templateId);
            for (int k = 0; k < temp.length(); ++k) {
                const auto &cell = temp.cells()[k];
                const int bit = grid.bitOf(cell.row, cell.col);
                if (testBit(inst.responsibility, bit)) {
                    word.vals[k] = cell_vals[bit];
                } else {
                    word.vals[k] = 0.0f;
                    ++out_.paddings_;
                }
            }
            current_.words.push_back(word);
            ++out_.numWords_;
        }
    }
}

SpasmMatrix
SpasmEncodeStream::finish(Count nnz)
{
    spasm_assert(!finished_);
    closeTile(true);
    out_.nnz_ = nnz;
    finished_ = true;
    return std::move(out_);
}

} // namespace spasm
