/**
 * @file
 * Out-of-core tiling for SPASM encoding: when a matrix's triplets
 * would blow the memory budget, bucket them into CRC-framed spill
 * files on disk (one file per tile-aligned row block), then external-
 * merge the buckets back one row block at a time through the
 * streaming encoder (`SpasmEncodeStream`).  Peak tracked memory stays
 * bounded by the flush threshold plus one row block, instead of the
 * whole entry list.
 *
 * Crash safety: spill files are `<dir>/spill-<pid>-b<block>.tmp`,
 * written append-only in self-checking frames (magic, bucket id,
 * count, CRC-32 of the payload).  A `kill -9` can tear at most the
 * frame in flight; a torn or corrupt frame is a typed read error,
 * never silent data.  `sweepSpillDir` runs at startup and renames any
 * orphaned `spill-*.tmp` (from a previous killed process) to
 * `*.quarantined` — forensics stay possible, re-runs never parse a
 * dead process's leftovers.
 *
 * Graceful degradation (`ingestEncodeMatrixMarket`): small inputs
 * never touch the disk — triplets accumulate in memory and encode
 * exactly like the non-streaming path.  Only when the accumulation
 * overruns the `MemoryBudget` (and a spill dir is configured) does
 * the run degrade to the out-of-core tiler, replaying what was
 * buffered so far.  The only ways out are success or a typed
 * `Error{BudgetExceeded | Io | ...}` — never an OOM kill, never a
 * silent wrong answer.
 *
 * The encoded result is bit-identical to the in-memory path: buckets
 * partition the tile rows, per-block canonicalization composes with
 * `CooMatrix::fromTriplets` (row-disjoint blocks, arrival order
 * preserved per bucket), and `SpasmEncoder::encode` is itself the
 * single-block case of `SpasmEncodeStream`.
 *
 * One deliberate degradation: the out-of-core path cannot run
 * dynamic portfolio *selection* (pattern analysis wants the whole
 * matrix in memory), so callers pass an explicit `SpasmEncoder` —
 * the same fixed-portfolio fallback the framework uses when analysis
 * is skipped.
 */

#ifndef SPASM_FORMAT_SPILL_HH
#define SPASM_FORMAT_SPILL_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "format/spasm_matrix.hh"
#include "sparse/stream_ingest.hh"

namespace spasm {

class MemoryBudget;

/**
 * Deterministic spill-I/O fault, drawn once per frame at write time
 * (src/faults/FaultPlan::spillFault implements the draw):
 *  - ShortWrite: the frame's payload is silently truncated on disk —
 *    the torn-write model; the reader detects it via framing/CRC;
 *  - NoSpace: the write fails immediately with a typed Error{Io}
 *    (ENOSPC model);
 *  - CorruptRead: a payload byte is flipped on the way back in,
 *    before the CRC check — detected as Error{ChecksumMismatch}.
 * All three surface as typed errors; none can yield silent data.
 */
enum class SpillFault
{
    None,
    ShortWrite,
    NoSpace,
    CorruptRead,
};

const char *spillFaultName(SpillFault fault);

struct SpillOptions
{
    /** Spill directory (created if missing).  Required by SpillTiler;
     *  empty in IngestEncodeOptions means "never spill". */
    std::string dir;

    /** Buffered triplet bytes that trigger a flush of all buckets. */
    std::int64_t flushBytes = 32ll << 20;

    /** Row blocks to bucket into (rounded to whole tile rows). */
    int targetBuckets = 64;

    /** Charged for buffered triplets and the per-block merge. */
    MemoryBudget *budget = nullptr;

    const CancellationToken *cancel = nullptr;

    /** Fault-injection hook, consulted once per frame with a stable
     *  site id; null = no injection. */
    std::function<SpillFault(std::uint64_t site)> fault;
};

struct SpillStats
{
    std::uint64_t spillBytes = 0;   ///< bytes appended to spill files
    std::uint64_t frames = 0;       ///< CRC frames written
    std::uint64_t flushes = 0;      ///< whole-buffer flush passes
    std::uint64_t buckets = 0;      ///< row blocks with any data
    std::uint64_t spilledTriplets = 0;
    std::uint64_t injectedFaults = 0;
};

/**
 * Startup sweep: rename every orphaned `spill-*.tmp` in @p dir to
 * `<name>.quarantined` (rename, never delete).  Returns the files
 * quarantined.  Missing dir is a no-op.
 */
std::vector<std::string> sweepSpillDir(const std::string &dir);

/**
 * A `TripletSink` that buckets incoming triplets by tile-aligned row
 * block, spilling buckets to CRC-framed files whenever the in-memory
 * buffer exceeds `flushBytes`, then merges bucket-by-bucket through a
 * `SpasmEncodeStream` in `finish()`.  Spill files are removed on
 * success; on any failure they remain for the next startup sweep to
 * quarantine.
 */
class SpillTiler : public TripletSink
{
  public:
    SpillTiler(const SpasmEncoder &encoder, SpillOptions options);
    ~SpillTiler() override;

    SpillTiler(const SpillTiler &) = delete;
    SpillTiler &operator=(const SpillTiler &) = delete;

    void onHeader(Index rows, Index cols, Count declared_nnz) override;
    void onTriplets(std::vector<Triplet> &&batch) override;

    /** External merge + streaming encode; spent afterwards. */
    SpasmMatrix finish();

    const SpillStats &stats() const { return stats_; }

  private:
    void flushAll();
    void writeFrame(std::size_t bucket,
                    const std::vector<Triplet> &triplets);
    std::vector<Triplet> readBucket(std::size_t bucket);
    std::string bucketPath(std::size_t bucket) const;

    SpillOptions options_;
    const SpasmEncoder &encoder_;
    SpillStats stats_;
    Index rows_ = 0;
    Index cols_ = 0;
    Index blockRows_ = 0; ///< rows per bucket (multiple of tile size)
    std::vector<std::vector<Triplet>> buffers_;
    std::vector<std::uint32_t> framesPerBucket_;
    /** Frames whose write-time draw said CorruptRead; applied when
     *  the frame is read back (site -> corrupt). */
    std::vector<std::uint64_t> corruptOnRead_;
    std::int64_t bufferedBytes_ = 0;
    std::int64_t chargedBytes_ = 0;
    bool spilled_ = false;
    bool finished_ = false;
};

/** Knobs for the one-call ingest-and-encode orchestrator. */
struct IngestEncodeOptions
{
    StreamIngestOptions stream;
    SpillOptions spill; ///< spill.dir empty = in-memory only
    /** Skip the in-memory attempt and spill from the first triplet
     *  (tests / `spasm ingest --force-spill`). */
    bool forceSpill = false;
};

/** What `ingestEncodeMatrixMarket` did and produced. */
struct IngestEncodeResult
{
    SpasmMatrix matrix;
    IngestStats parse;
    SpillStats spill;
    bool spilled = false;
};

/**
 * Parse @p path with the chunked streaming parser and encode it with
 * @p encoder, degrading from in-memory accumulation to the
 * out-of-core spill tiler only when the `MemoryBudget` overflows (and
 * `spill.dir` is set).  The result is bit-identical either way.
 */
IngestEncodeResult
ingestEncodeMatrixMarket(const std::string &path,
                         const SpasmEncoder &encoder,
                         const IngestEncodeOptions &options);

/** `spasm-ingest-v1` stats JSON (documented in docs/ingestion.md). */
void writeIngestJson(std::ostream &os, const std::string &input,
                     const IngestEncodeResult &result,
                     std::int64_t peak_budget_bytes);

} // namespace spasm

#endif // SPASM_FORMAT_SPILL_HH
