#include "format/matrix_cache.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "sparse/coo.hh"
#include "support/atomic_file.hh"
#include "support/cancellation.hh"
#include "support/error.hh"
#include "support/json.hh"
#include "support/json_value.hh"
#include "support/logging.hh"
#include "support/obs.hh"

namespace fs = std::filesystem;

namespace spasm {

namespace {

constexpr const char *kMetaSchema = "spasm-cache-meta-v1";

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
containerPath(const std::string &dir, const std::string &key)
{
    return dir + "/" + key + ".spasm";
}

std::string
metaPath(const std::string &dir, const std::string &key)
{
    return dir + "/" + key + ".meta.json";
}

/** Read a whole file; throws Error{Io} when it cannot be opened. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw Error::atInput(ErrorCode::Io, path,
                             "cannot open cache sidecar");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

CacheEntryMeta
parseMeta(const std::string &path, const std::string &key)
{
    const std::string text = slurp(path);
    std::string err;
    const JsonValue doc = parseJson(text, &err);
    if (!err.empty() || !doc.isObject())
        throw Error::atInput(ErrorCode::Parse, path,
                             "malformed cache sidecar: %s",
                             err.empty() ? "not an object"
                                         : err.c_str());
    if (doc.stringOr("schema") != kMetaSchema)
        throw Error::atInput(ErrorCode::BadVersion, path,
                             "unknown sidecar schema '%s'",
                             doc.stringOr("schema").c_str());
    if (doc.stringOr("key") != key)
        throw Error::atInput(ErrorCode::Invariant, path,
                             "sidecar key '%s' does not match "
                             "filename key '%s'",
                             doc.stringOr("key").c_str(), key.c_str());
    CacheEntryMeta meta;
    meta.numPeGroups =
        static_cast<int>(doc.numberOr("num_pe_groups", 4));
    meta.numXvecCh = static_cast<int>(doc.numberOr("num_xvec_ch", 1));
    meta.freqMhz = doc.numberOr("freq_mhz", 252.0);
    meta.policy = doc.stringOr("policy", "load-balanced");
    meta.portfolioId =
        static_cast<int>(doc.numberOr("portfolio_id", 0));
    meta.estCycles = static_cast<std::uint64_t>(
        doc.numberOr("est_cycles", 0));
    meta.estSeconds = doc.numberOr("est_seconds", 0.0);
    if (meta.policy != "load-balanced" && meta.policy != "round-robin")
        throw Error::atInput(ErrorCode::Invariant, path,
                             "unknown schedule policy '%s'",
                             meta.policy.c_str());
    if (meta.numPeGroups < 1 || meta.numXvecCh < 1 ||
        meta.freqMhz <= 0.0)
        throw Error::atInput(ErrorCode::Invariant, path,
                             "impossible hw config in sidecar");
    return meta;
}

void
writeMeta(JsonWriter &w, const std::string &key,
          const CacheEntryMeta &meta)
{
    w.beginObject();
    w.field("schema", kMetaSchema);
    w.field("key", key);
    w.field("num_pe_groups", meta.numPeGroups);
    w.field("num_xvec_ch", meta.numXvecCh);
    w.field("freq_mhz", meta.freqMhz);
    w.field("policy", meta.policy);
    w.field("portfolio_id", meta.portfolioId);
    w.field("est_cycles", meta.estCycles);
    w.field("est_seconds", meta.estSeconds);
    w.endObject();
    w.finish();
}

} // namespace

std::uint64_t
hashMix(std::uint64_t h, std::uint64_t v)
{
    return splitmix64(h ^ splitmix64(v));
}

std::uint64_t
hashString(std::uint64_t h, const std::string &s)
{
    h = hashMix(h, s.size());
    for (char c : s)
        h = hashMix(h, static_cast<unsigned char>(c));
    return h;
}

void
ContentHasher::begin(Index rows, Index cols, Count nnz)
{
    std::uint64_t h = 0x535041534d303031ULL; // "SPASM001"
    h = hashMix(h, static_cast<std::uint64_t>(rows));
    h = hashMix(h, static_cast<std::uint64_t>(cols));
    h = hashMix(h, static_cast<std::uint64_t>(nnz));
    h_ = h;
}

void
ContentHasher::add(const Triplet &t)
{
    std::uint32_t bits = 0;
    std::memcpy(&bits, &t.val, sizeof(bits));
    std::uint64_t h = h_;
    h = hashMix(h, static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(t.row)) << 32 |
                       static_cast<std::uint32_t>(t.col));
    h = hashMix(h, bits);
    h_ = h;
}

std::uint64_t
hashMatrixContent(const CooMatrix &m)
{
    ContentHasher hasher;
    hasher.begin(m.rows(), m.cols(), m.nnz());
    for (const Triplet &t : m.entries())
        hasher.add(t);
    return hasher.finish();
}

std::string
cacheKey(std::uint64_t matrix_hash, std::uint64_t config_hash)
{
    return hex16(matrix_hash) + "-" + hex16(config_hash);
}

EncodedMatrixCache::EncodedMatrixCache(Options options)
    : options_(std::move(options))
{
    if (options_.capacity < 1)
        options_.capacity = 1;
    if (!options_.dir.empty()) {
        std::error_code ec;
        fs::create_directories(options_.dir, ec);
        if (ec)
            throw Error::atInput(ErrorCode::Io, options_.dir,
                                 "cannot create cache directory: %s",
                                 ec.message().c_str());
    }
}

void
EncodedMatrixCache::bump(const char *suffix)
{
    auto &reg = obs::Registry::global();
    if (reg.enabled())
        reg.add(options_.metricPrefix + suffix);
}

void
EncodedMatrixCache::quarantineFile(const std::string &path,
                                   const char *reason,
                                   ScanReport *report)
{
    const std::string target = path + ".quarantined";
    std::error_code ec;
    fs::rename(path, target, ec);
    if (ec) {
        logWarn("cache", "cannot quarantine %s: %s", path.c_str(),
                ec.message().c_str());
        return;
    }
    logWarn("cache", "quarantined %s -> %s: %s", path.c_str(),
            target.c_str(), reason);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.quarantined;
    }
    bump(".quarantine");
    if (report != nullptr) {
        ++report->quarantined;
        report->quarantinedFiles.push_back(path);
    }
}

EncodedMatrixCache::ScanReport
EncodedMatrixCache::scanDisk()
{
    ScanReport report;
    if (options_.dir.empty())
        return report;

    // Snapshot the listing first: quarantine renames files while we
    // walk, and a mutating directory_iterator is UB on some stdlibs.
    std::vector<std::string> names;
    for (const auto &de : fs::directory_iterator(options_.dir)) {
        if (de.is_regular_file())
            names.push_back(de.path().filename().string());
    }
    std::sort(names.begin(), names.end());

    const auto endsWith = [](const std::string &s,
                             const std::string &suffix) {
        return s.size() >= suffix.size() &&
               s.compare(s.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
    };

    for (const std::string &name : names) {
        const std::string path = options_.dir + "/" + name;
        if (endsWith(name, ".quarantined"))
            continue;
        if (name.find(".tmp.") != std::string::npos) {
            // A writer died between open and rename; the target was
            // never touched, but keep the evidence.
            quarantineFile(path, "orphaned temp file "
                                 "(writer interrupted)",
                           &report);
            continue;
        }
        if (endsWith(name, ".meta.json")) {
            const std::string key =
                name.substr(0, name.size() - 10);
            if (!fs::exists(containerPath(options_.dir, key)))
                quarantineFile(path, "sidecar without container",
                               &report);
            continue; // the pair is validated from the .spasm side
        }
        if (!endsWith(name, ".spasm"))
            continue;

        const std::string key = name.substr(0, name.size() - 6);
        const std::string meta = metaPath(options_.dir, key);
        if (!fs::exists(meta)) {
            quarantineFile(path, "container without sidecar "
                                 "(interrupted write)",
                           &report);
            continue;
        }
        try {
            // Full CRC re-verification: readSpasmFile checks every
            // section checksum against the payload.
            (void)readSpasmFile(path, options_.limits);
            (void)parseMeta(meta, key);
        } catch (const Error &e) {
            quarantineFile(path, e.what(), &report);
            quarantineFile(meta, "paired with quarantined container",
                           nullptr);
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            diskKeys_.insert(key);
        }
        ++report.usable;
    }
    logInform("cache", "scan: %zu usable entries, %zu quarantined",
              report.usable, report.quarantined);
    return report;
}

std::shared_ptr<const EncodedMatrixEntry>
EncodedMatrixCache::lookupLocked(const std::string &key)
{
    auto it = index_.find(key);
    if (it == index_.end())
        return nullptr;
    // Touch: move to the front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second);
    ++counters_.hits;
    return it->second->entry;
}

void
EncodedMatrixCache::insertAndEvict(
    const std::string &key,
    std::shared_ptr<const EncodedMatrixEntry> e)
{
    lru_.push_front(LruSlot{key, std::move(e)});
    index_[key] = lru_.begin();
    // Evict from the cold end, skipping pinned entries (use_count
    // above our own reference means an in-flight request holds it).
    // When everything is pinned the cache runs over capacity rather
    // than invalidating live work.
    auto it = lru_.end();
    while (lru_.size() > options_.capacity && it != lru_.begin()) {
        --it;
        if (it->entry.use_count() > 1)
            continue;
        index_.erase(it->key);
        it = lru_.erase(it);
        ++counters_.evictions;
        bump(".evict");
    }
    auto &reg = obs::Registry::global();
    if (reg.enabled())
        reg.set(options_.metricPrefix + ".entries",
                static_cast<double>(lru_.size()));
}

std::shared_ptr<const EncodedMatrixEntry>
EncodedMatrixCache::loadFromDisk(const std::string &key)
{
    auto entry = std::make_shared<EncodedMatrixEntry>();
    entry->key = key;
    entry->encoded =
        readSpasmFile(containerPath(options_.dir, key),
                      options_.limits);
    entry->meta = parseMeta(metaPath(options_.dir, key), key);
    entry->warm = true;
    return entry;
}

void
EncodedMatrixCache::persist(const EncodedMatrixEntry &entry)
{
    // Container first, sidecar second: the sidecar is the commit
    // point, so a kill between the two writes leaves a container the
    // startup scan recognizes as interrupted and quarantines.
    writeFileAtomic(containerPath(options_.dir, entry.key),
                    [&](std::ostream &os) {
                        writeSpasmFile(entry.encoded, os);
                    });
    writeFileAtomic(metaPath(options_.dir, entry.key),
                    [&](std::ostream &os) {
                        JsonWriter w(os);
                        writeMeta(w, entry.key, entry.meta);
                    });
}

std::shared_ptr<const EncodedMatrixEntry>
EncodedMatrixCache::getOrBuild(const std::string &key,
                               const Builder &build,
                               const CancellationToken *cancel,
                               Outcome *outcome)
{
    bool tryDisk = false;
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        if (auto hit = lookupLocked(key)) {
            lock.unlock();
            bump(".hit");
            if (outcome != nullptr)
                *outcome = Outcome::Hit;
            return hit;
        }
        if (building_.count(key) == 0) {
            building_.insert(key);
            tryDisk = diskKeys_.count(key) != 0;
            break;
        }
        // Another thread is building this key: wait, then re-check.
        // The wait is bounded so a cancelled waiter notices its token
        // without depending on the builder's progress.
        buildCv_.wait_for(lock, std::chrono::milliseconds(50));
        if (cancel != nullptr)
            cancel->throwIfCancelled("cache wait");
    }

    // Builder role from here: must clear building_ on every exit.
    std::shared_ptr<const EncodedMatrixEntry> result;
    try {
        if (tryDisk) {
            try {
                result = loadFromDisk(key);
            } catch (const Error &e) {
                // Corrupted since the scan: quarantine and fall
                // through to a transparent re-encode.
                quarantineFile(containerPath(options_.dir, key),
                               e.what(), nullptr);
                quarantineFile(metaPath(options_.dir, key),
                               "paired with quarantined container",
                               nullptr);
                std::lock_guard<std::mutex> lock(mutex_);
                diskKeys_.erase(key);
            }
        }
        bool persisted = false;
        if (!result) {
            EncodedMatrixEntry built = build();
            built.key = key;
            built.warm = false;
            if (!options_.dir.empty()) {
                persist(built);
                persisted = true;
            }
            result = std::make_shared<EncodedMatrixEntry>(
                std::move(built));
        }
        std::lock_guard<std::mutex> lock(mutex_);
        building_.erase(key);
        if (result->warm)
            ++counters_.warmHits;
        else
            ++counters_.misses;
        if (persisted || result->warm)
            diskKeys_.insert(key);
        insertAndEvict(key, result);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            building_.erase(key);
        }
        buildCv_.notify_all();
        throw;
    }
    buildCv_.notify_all();
    bump(result->warm ? ".hit.warm" : ".miss");
    if (outcome != nullptr)
        *outcome = result->warm ? Outcome::WarmLoad : Outcome::Built;
    return result;
}

EncodedMatrixCache::Counters
EncodedMatrixCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

std::size_t
EncodedMatrixCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

} // namespace spasm
