/**
 * @file
 * The SPASM sparse data format (section III): a two-level tiling of the
 * matrix into COO-indexed tiles of template-instance streams.
 */

#ifndef SPASM_FORMAT_SPASM_MATRIX_HH
#define SPASM_FORMAT_SPASM_MATRIX_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "format/position_encoding.hh"
#include "pattern/template_library.hh"
#include "sparse/coo.hh"
#include "sparse/types.hh"

namespace spasm {

class Decomposer;
class SpasmMatrix;
struct SerializeLimits;

/** Defined in serialize.hh; declared here for the friend grant. */
SpasmMatrix readSpasmFile(std::istream &in, const std::string &name,
                          const SerializeLimits &limits);

/** One position-encoding word plus its four shared values. */
struct EncodedWord
{
    PositionEncoding pos;
    std::array<Value, 4> vals{0.0f, 0.0f, 0.0f, 0.0f};
};

/** One non-empty tile: global COO coordinates + its word stream. */
struct SpasmTile
{
    Index tileRowIdx = 0;
    Index tileColIdx = 0;
    std::vector<EncodedWord> words;
};

/**
 * A matrix encoded in the SPASM format.
 *
 * Tiles are ordered row-block-major (all tiles of tile row 0 left to
 * right, then tile row 1, ...), matching the accelerator's streaming
 * order: within a tile row the partial-sum buffer accumulates across
 * tiles; CE marks tile boundaries (x-buffer switch) and RE marks tile-
 * row boundaries (partial-sum flush).
 */
class SpasmMatrix
{
  public:
    SpasmMatrix() = default;

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index tileSize() const { return tileSize_; }
    Count nnz() const { return nnz_; }

    const TemplatePortfolio &portfolio() const { return portfolio_; }
    const std::vector<SpasmTile> &tiles() const { return tiles_; }

    /** Total template instances (= encoded words). */
    Count numWords() const { return numWords_; }

    /** Total zero paddings across all instances. */
    Count paddings() const { return paddings_; }

    /** Fraction of stored values that are paddings. */
    double paddingRate() const;

    /**
     * Second-level storage footprint: (P+1)*4 bytes per word.  The
     * first-level tile COO adds 8 bytes per tile, reported separately
     * because the paper's comparison ignores it for all formats.
     */
    std::int64_t encodedBytes() const;
    std::int64_t tileIndexBytes() const;

    /**
     * Software reference execution of the encoded stream:
     * y = A * x + y.  Used to validate the encoder and as the golden
     * model for the cycle-level simulator.
     */
    void execute(const std::vector<Value> &x,
                 std::vector<Value> &y) const;

    /** Reconstruct the plain COO matrix (drops paddings). */
    CooMatrix toCoo() const;

    /** Number of tile rows (= ceil(rows / tileSize)). */
    Index numTileRows() const;

  private:
    friend class SpasmEncoder;
    friend class SpasmEncodeStream;
    friend SpasmMatrix readSpasmFile(std::istream &in,
                                     const std::string &name,
                                     const SerializeLimits &limits);
    friend struct SpasmMatrixMutator;

    Index rows_ = 0;
    Index cols_ = 0;
    Index tileSize_ = 0;
    Count nnz_ = 0;
    Count numWords_ = 0;
    Count paddings_ = 0;
    TemplatePortfolio portfolio_;
    std::vector<SpasmTile> tiles_;
};

/**
 * Raw mutable access to an encoded matrix for fault-injection tests
 * and the `spasm chaos` driver, which need to corrupt an in-memory
 * stream on purpose.  Bypasses every encoder invariant — never use it
 * on a matrix that will be trusted afterwards.
 */
struct SpasmMatrixMutator
{
    static std::vector<SpasmTile> &tiles(SpasmMatrix &m)
    {
        return m.tiles_;
    }
    static Count &numWords(SpasmMatrix &m) { return m.numWords_; }
    static Count &nnz(SpasmMatrix &m) { return m.nnz_; }
};

/**
 * Steps (3)+(4) of the workflow: decompose local patterns against a
 * portfolio and tile the result into the SPASM format.
 */
class SpasmEncoder
{
  public:
    /**
     * @param tile_size       Tile edge length; must be a positive
     *                        multiple of the grid size and at most
     *                        kMaxTileSize.
     * @param interleave_rows Reorder each tile's word stream so that
     *                        consecutive words hit different
     *                        partial-sum rows (round-robin across
     *                        r_idx buckets) — hazard-aware scheduling
     *                        for accumulator pipelines with a
     *                        multi-cycle read-modify-write latency.
     *                        Functionally neutral (order-independent
     *                        accumulation).
     */
    SpasmEncoder(TemplatePortfolio portfolio, Index tile_size,
                 bool interleave_rows = false);

    /** Encode @p m; fatal() if the portfolio grid is not 4 (the
     *  hardware VALU width) when @p require_hw_grid is true. */
    SpasmMatrix encode(const CooMatrix &m) const;

    Index tileSize() const { return tileSize_; }
    bool interleaveRows() const { return interleaveRows_; }
    const TemplatePortfolio &portfolio() const { return portfolio_; }

  private:
    TemplatePortfolio portfolio_;
    Index tileSize_;
    bool interleaveRows_;
};

/**
 * Incremental form of `SpasmEncoder::encode` for out-of-core
 * ingestion: feed canonical COO entries one row block at a time and
 * finish into a complete `SpasmMatrix` without ever holding the whole
 * entry list.
 *
 * Contract: each block must cover whole tile rows (row range a
 * multiple of the encoder's tile size), blocks must arrive in
 * ascending row order, and each block's entries must already be in
 * canonical COO order (what `CooMatrix::fromTriplets` produces).
 * Under that contract the emitted word stream is bit-identical to a
 * one-shot encode of the concatenated entries: tiles stream
 * row-block-major either way, and the current tile is closed lazily —
 * on the first entry of the next tile or at `finish` — so the
 * CE/RE boundary flags land on exactly the same words.
 * `SpasmEncoder::encode` itself is implemented as a single-block
 * stream, so the two paths cannot drift apart.
 *
 * The encoder must outlive the stream.
 */
class SpasmEncodeStream
{
  public:
    SpasmEncodeStream(const SpasmEncoder &encoder, Index rows,
                      Index cols);
    ~SpasmEncodeStream();

    SpasmEncodeStream(const SpasmEncodeStream &) = delete;
    SpasmEncodeStream &operator=(const SpasmEncodeStream &) = delete;

    /** Encode one row block's entries (see the class contract). */
    void appendRowBlock(const std::vector<Triplet> &entries);

    /** Close the final tile (sets its RE flag) and return the
     *  finished matrix.  @p nnz is the canonical entry total across
     *  all appended blocks.  The stream is spent afterwards. */
    SpasmMatrix finish(Count nnz);

    /** Words emitted so far (progress reporting). */
    Count wordsSoFar() const { return out_.numWords_; }

  private:
    void closeTile(bool row_end);

    const SpasmEncoder &encoder_;
    std::unique_ptr<Decomposer> decomposer_;
    SpasmMatrix out_;
    SpasmTile current_;
    Index numTileCols_ = 0;
    std::uint64_t lastKey_ = 0;
    bool tileOpen_ = false;
    bool finished_ = false;
};

} // namespace spasm

#endif // SPASM_FORMAT_SPASM_MATRIX_HH
