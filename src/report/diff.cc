#include "report/diff.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace spasm {
namespace report {

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative glob with single-star backtracking.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

ToleranceSpec
ToleranceSpec::defaults()
{
    ToleranceSpec spec;
    // Wall-clock metrics: wide band + 1ms/1us floor.  Everything the
    // simulator derives from cycles is NOT here on purpose.
    spec.rules.push_back({"preprocess.*", 0.5, 1.0});
    spec.rules.push_back({"*_ms", 0.5, 1.0});
    spec.rules.push_back({"*_us", 0.5, 1.0});
    spec.rules.push_back({"rows.*.time*", 0.5, 1.0});
    spec.rules.push_back({"rows.*.*ms*", 0.5, 1.0});
    return spec;
}

ToleranceRule
ToleranceSpec::ruleFor(const std::string &path) const
{
    if (strict)
        return {path, 0.0, 0.0, false};
    for (const auto &rule : rules) {
        if (globMatch(rule.pattern, path))
            return rule;
    }
    return {path, defaultRel, 0.0, true};
}

bool
higherIsBetter(const std::string &path)
{
    for (const char *token :
         {"gflops", "utilization", "occupancy", "coverage",
          "throughput", "speedup"}) {
        if (path.find(token) != std::string::npos)
            return true;
    }
    return false;
}

namespace {

DeltaStatus
classify(const Metric &b, const Metric &c, const ToleranceRule &rule,
         bool strict, MetricDelta &delta)
{
    delta.baseline = b.value;
    delta.candidate = c.value;
    delta.absDelta = c.value - b.value;
    const double mag =
        std::max(std::abs(b.value), std::abs(c.value));
    delta.relDelta =
        mag > 0.0 ? std::abs(delta.absDelta) / mag : 0.0;
    delta.relAllowed = rule.rel;

    // Deterministic counters: token-identical or failed.  Only an
    // explicit rule can loosen them — the default fractional band
    // does not apply (zero tolerance on counts).
    if (b.integral && c.integral) {
        delta.relAllowed = rule.fromDefault ? 0.0 : rule.rel;
        if (b.raw == c.raw)
            return DeltaStatus::Equal;
        if (!strict && !rule.fromDefault &&
            (std::abs(delta.absDelta) <= rule.absFloor ||
             delta.relDelta <= rule.rel))
            return DeltaStatus::Within;
        return higherIsBetter(delta.path) == (delta.absDelta > 0.0)
                   ? DeltaStatus::Improved
                   : DeltaStatus::Regressed;
    }

    if (b.raw == c.raw || b.value == c.value)
        return DeltaStatus::Equal;
    if (!strict && (std::abs(delta.absDelta) <= rule.absFloor ||
                    delta.relDelta <= rule.rel))
        return DeltaStatus::Within;
    return higherIsBetter(delta.path) == (delta.absDelta > 0.0)
               ? DeltaStatus::Improved
               : DeltaStatus::Regressed;
}

} // namespace

std::vector<const MetricDelta *>
DiffReport::failures() const
{
    std::vector<const MetricDelta *> out;
    for (const auto &d : deltas) {
        if (d.status == DeltaStatus::Regressed ||
            d.status == DeltaStatus::Improved ||
            d.status == DeltaStatus::Missing)
            out.push_back(&d);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const MetricDelta *a, const MetricDelta *b) {
                         return a->relDelta > b->relDelta;
                     });
    return out;
}

bool
DiffReport::ok() const
{
    for (const auto &d : deltas) {
        if (d.status == DeltaStatus::Regressed ||
            d.status == DeltaStatus::Improved ||
            d.status == DeltaStatus::Missing)
            return false;
    }
    return true;
}

DiffReport
diffStats(const StatsFile &baseline, const StatsFile &candidate,
          const ToleranceSpec &spec)
{
    DiffReport report;
    report.baselinePath = baseline.path;
    report.candidatePath = candidate.path;

    if (baseline.schema != candidate.schema) {
        report.warnings.push_back(
            "schema mismatch: baseline " + baseline.schema +
            " vs candidate " + candidate.schema);
    }

    // Provenance/context: comparability warnings, never gates.
    for (const auto &kv : baseline.provenance) {
        const auto it = candidate.provenance.find(kv.first);
        const std::string cand =
            it == candidate.provenance.end() ? "(absent)"
                                             : it->second;
        if (cand != kv.second) {
            report.warnings.push_back(
                "provenance." + kv.first + " differs: baseline '" +
                kv.second + "' vs candidate '" + cand +
                "' — runs may not be comparable");
        }
    }
    for (const auto &kv : baseline.context) {
        const auto it = candidate.context.find(kv.first);
        const std::string cand =
            it == candidate.context.end() ? "(absent)" : it->second;
        if (cand != kv.second) {
            report.warnings.push_back(
                kv.first + " differs: baseline '" + kv.second +
                "' vs candidate '" + cand + "'");
        }
    }

    std::unordered_map<std::string, const Metric *> candIndex;
    candIndex.reserve(candidate.metrics.size());
    for (const auto &m : candidate.metrics)
        candIndex.emplace(m.path, &m);

    for (const auto &b : baseline.metrics) {
        MetricDelta delta;
        delta.path = b.path;
        const auto it = candIndex.find(b.path);
        if (it == candIndex.end()) {
            delta.baseline = b.value;
            delta.status = DeltaStatus::Missing;
            report.deltas.push_back(std::move(delta));
            continue;
        }
        const Metric &c = *it->second;
        candIndex.erase(it);
        delta.status = classify(b, c, spec.ruleFor(b.path),
                                spec.strict, delta);
        ++report.numCompared;
        if (delta.status == DeltaStatus::Equal)
            ++report.numEqual;
        else if (delta.status == DeltaStatus::Within)
            ++report.numWithin;
        report.deltas.push_back(std::move(delta));
    }

    // Candidate-only metrics, in candidate document order.
    for (const auto &c : candidate.metrics) {
        if (candIndex.find(c.path) == candIndex.end())
            continue;
        MetricDelta delta;
        delta.path = c.path;
        delta.candidate = c.value;
        delta.status = DeltaStatus::Added;
        report.warnings.push_back("metric only in candidate: " +
                                  c.path);
        report.deltas.push_back(std::move(delta));
    }

    return report;
}

} // namespace report
} // namespace spasm
