/**
 * @file
 * The golden-baseline portfolio: the fixed set of (workload ×
 * hardware configuration) runs whose deterministic `spasm-stats-v1`
 * records are committed under `bench/baselines/` and gate every PR
 * via `spasm compare` (see docs/regression.md).
 *
 * The set is small on purpose — one representative workload per
 * global-composition class against each Table-IV bitstream — so the
 * CI perf-regression job stays fast while still covering every
 * simulator subsystem (value/position/x channels, psum drain,
 * schedule exploration).  Runs are pinned to Tiny scale: goldens must
 * regenerate bit-identically on any machine.
 */

#ifndef SPASM_REPORT_GOLDEN_HH
#define SPASM_REPORT_GOLDEN_HH

#include <string>
#include <vector>

namespace spasm {
namespace report {

/** One golden run: a suite workload pinned to one bitstream. */
struct GoldenSpec
{
    std::string workload; ///< Table-II workload name
    std::string config;   ///< Table-IV configuration name
};

/** The committed baseline portfolio, in file order. */
const std::vector<GoldenSpec> &goldenSpecs();

/** Baseline file name for a spec: "<workload>_<config>.json". */
std::string goldenFileName(const GoldenSpec &spec);

} // namespace report
} // namespace spasm

#endif // SPASM_REPORT_GOLDEN_HH
