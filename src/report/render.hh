/**
 * @file
 * Renderers for diff and bottleneck reports: column-aligned terminal
 * tables (support/table.hh) for interactive use and GitHub-flavoured
 * markdown for the CI artifact.
 */

#ifndef SPASM_REPORT_RENDER_HH
#define SPASM_REPORT_RENDER_HH

#include <ostream>

#include "report/attribution.hh"
#include "report/diff.hh"

namespace spasm {
namespace report {

/**
 * Print a comparison: PASS/FAIL banner, warnings, and a table of
 * every gating delta (plus all within-tolerance movement when
 * @p show_all).
 */
void renderDiffText(std::ostream &os, const DiffReport &diff,
                    bool show_all = false);

/** Same content as markdown (summary, warnings, delta table). */
void renderDiffMarkdown(std::ostream &os, const DiffReport &diff);

/** Print a bottleneck report (verdict, cycle budget, roofline,
 *  stall attribution, imbalance, preprocessing breakdown). */
void renderBottleneckText(std::ostream &os,
                          const BottleneckReport &rep);

/** Same content as markdown. */
void renderBottleneckMarkdown(std::ostream &os,
                              const BottleneckReport &rep);

/** Print a host-attribution verdict over a `spasm-prof-v1` record
 *  (host vs simulated split, binding region, counters). */
void renderHostAttributionText(std::ostream &os,
                               const HostAttribution &rep);

/** Same content as markdown. */
void renderHostAttributionMarkdown(std::ostream &os,
                                   const HostAttribution &rep);

} // namespace report
} // namespace spasm

#endif // SPASM_REPORT_RENDER_HH
