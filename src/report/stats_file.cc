#include "report/stats_file.hh"

#include <cstdlib>

#include "support/logging.hh"

namespace spasm {
namespace report {

namespace {

/** Top-level stats-v1 sections excluded from the metric flatten. */
bool
isMetadataSection(const std::string &key)
{
    return key == "schema" || key == "schema_minor" ||
           key == "generator" || key == "provenance" ||
           key == "spans";
}

void
flattenValue(const JsonValue &v, const std::string &path,
             StatsFile &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Number: {
        Metric m;
        m.path = path;
        m.value = v.number;
        m.raw = v.raw;
        m.integral = v.isIntegral();
        out.metrics.push_back(std::move(m));
        break;
      }
      case JsonValue::Kind::String:
        out.context[path] = v.string;
        break;
      case JsonValue::Kind::Bool:
        out.context[path] = v.boolean ? "true" : "false";
        break;
      case JsonValue::Kind::Null:
        // The writer's escape for non-finite doubles: a metric whose
        // value exists but is not a number.  Record as context so a
        // newly-NaN metric surfaces as missing + context change.
        out.context[path] = "null";
        break;
      case JsonValue::Kind::Array:
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            flattenValue(v.array[i],
                         path + "[" + std::to_string(i) + "]", out);
        }
        break;
      case JsonValue::Kind::Object:
        for (const auto &kv : v.object) {
            flattenValue(kv.second,
                         path.empty() ? kv.first
                                      : path + "." + kv.first,
                         out);
        }
        break;
    }
}

void
flattenStats(StatsFile &out)
{
    for (const auto &kv : out.root.object) {
        if (isMetadataSection(kv.first))
            continue;
        flattenValue(kv.second, kv.first, out);
    }
    const JsonValue *prov = out.root.find("provenance");
    if (prov != nullptr && prov->isObject()) {
        for (const auto &kv : prov->object) {
            if (kv.second.isString())
                out.provenance[kv.first] = kv.second.string;
            else if (kv.second.isNumber())
                out.provenance[kv.first] = kv.second.raw;
        }
    }
}

/** Parse a leading number, tolerating a unit-ish suffix ("1.23x"). */
bool
parseCell(const std::string &text, double &value, bool &integral)
{
    if (text.empty())
        return false;
    const char *begin = text.c_str();
    char *end = nullptr;
    value = std::strtod(begin, &end);
    if (end == begin)
        return false;
    // Accept only short suffixes; "3 of 7" or prose cells stay text.
    if (text.size() - static_cast<std::size_t>(end - begin) > 2)
        return false;
    integral = true;
    for (const char *p = begin; p != end; ++p) {
        if (*p == '.' || *p == 'e' || *p == 'E')
            integral = false;
    }
    return true;
}

void
flattenBench(StatsFile &out)
{
    const JsonValue &columns = out.root.at("columns");
    const JsonValue &rows = out.root.at("rows");
    if (!columns.isArray() || !rows.isArray())
        spasm_fatal("%s: bench file without columns/rows arrays",
                    out.path.c_str());
    std::vector<std::string> headers;
    for (const auto &c : columns.array)
        headers.push_back(c.isString() ? c.string : "?");
    for (const auto &row : rows.array) {
        if (!row.isArray() || row.array.empty())
            continue;
        const std::string key =
            row.array[0].isString() ? row.array[0].string : "?";
        for (std::size_t i = 1; i < row.array.size(); ++i) {
            const std::string col =
                i < headers.size() ? headers[i]
                                   : std::to_string(i);
            const std::string path = "rows." + key + "." + col;
            const JsonValue &cell = row.array[i];
            const std::string text =
                cell.isString() ? cell.string : cell.raw;
            double value = 0.0;
            bool integral = false;
            if (parseCell(text, value, integral)) {
                Metric m;
                m.path = path;
                m.value = value;
                m.raw = text;
                m.integral = integral;
                out.metrics.push_back(std::move(m));
            } else {
                out.context[path] = text;
            }
        }
    }
    out.context["experiment"] =
        out.root.stringOr("experiment", "?");
}

} // namespace

const Metric *
StatsFile::find(const std::string &metric_path) const
{
    for (const auto &m : metrics) {
        if (m.path == metric_path)
            return &m;
    }
    return nullptr;
}

StatsFile
loadStatsFile(const std::string &path)
{
    StatsFile out;
    out.path = path;
    out.root = parseJsonFile(path);
    if (!out.root.isObject())
        spasm_fatal("%s: top-level JSON value is not an object",
                    path.c_str());
    out.schema = out.root.stringOr("schema");
    out.schemaMinor = static_cast<int>(
        out.root.numberOr("schema_minor", 0.0));
    if (out.schema == "spasm-stats-v1")
        flattenStats(out);
    else if (out.schema == "spasm-batch-v1")
        // Batch-campaign records share the stats-v1 shape (metadata
        // sections plus numeric leaves), so the same flatten applies:
        // per-job outcomes land as context, counters as metrics.
        flattenStats(out);
    else if (out.schema == "spasm-prof-v1")
        // Self-profile records also share the stats-v1 shape; the
        // region/counter leaves flatten into comparable metrics and
        // `spasm report` dispatches on the schema tag.
        flattenStats(out);
    else if (out.schema == "spasm-bench-v1")
        flattenBench(out);
    else
        spasm_fatal("%s: unknown schema '%s' (expected "
                    "spasm-stats-v1, spasm-batch-v1, "
                    "spasm-prof-v1 or spasm-bench-v1)",
                    path.c_str(), out.schema.c_str());
    return out;
}

} // namespace report
} // namespace spasm
