/**
 * @file
 * Automated bottleneck attribution over one `spasm-stats-v1` record —
 * the engine behind `spasm report`.
 *
 * The simulator already publishes everything needed to explain a run:
 * aggregate and per-PE stall counters by cause, per-channel delivered
 * bytes, and the bytes/FLOPs totals.  This layer turns them into a
 * verdict: every PE-cycle of the run is one of *busy* (issuing a
 * word), *stalled on a memory resource* (value / position / x-vector
 * / y-drain channel, or an accumulator hazard), or *idle* (no work
 * assigned — imbalance, warm-up or drain).  The largest bucket names
 * the binding resource, cross-checked against the run's roofline
 * placement (perf/roofline.hh) versus the Table-IV machine point.
 */

#ifndef SPASM_REPORT_ATTRIBUTION_HH
#define SPASM_REPORT_ATTRIBUTION_HH

#include <string>
#include <vector>

#include "perf/roofline.hh"
#include "report/stats_file.hh"

namespace spasm {
namespace report {

/** One stall cause and its share of total PE-cycles. */
struct StallSlice
{
    std::string cause; ///< "value", "position", "xvec", "flush", ...
    double cycles = 0.0;
    double fraction = 0.0; ///< of cycles * numPes
};

/** Aggregated activity of one PE group (16 PEs). */
struct GroupAttribution
{
    int group = 0;
    double words = 0.0;
    double busyFraction = 0.0; ///< of the group's PE-cycles
    std::vector<StallSlice> topStalls; ///< top-N, descending
};

/** The binding resource of a run. */
enum class Binding
{
    HbmBandwidth, ///< memory stalls dominate / bandwidth roof
    PeIssue,      ///< PEs busy issuing — compute roof
    LoadImbalance ///< PEs idle without stalling — work distribution
};

/** Human-readable name ("hbm-bandwidth", "pe-issue", ...). */
std::string bindingName(Binding binding);

/** One preprocessing stage's share. */
struct StageBreakdown
{
    std::string stage;
    double ms = 0.0;
    double fraction = 0.0; ///< of total preprocessing time
};

/** Everything `spasm report` prints. */
struct BottleneckReport
{
    std::string inputName;
    std::string configName;
    double cycles = 0.0;
    int numPes = 0;
    int peGroups = 0;

    RooflinePoint roofline;

    /** Cycle budget: fractions of cycles * numPes. */
    double busyFraction = 0.0;
    double stallFraction = 0.0; ///< all causes combined
    double idleFraction = 0.0;

    /** All stall causes, descending share. */
    std::vector<StallSlice> stalls;

    /** Per-PE-group attribution (empty without per_pe data). */
    std::vector<GroupAttribution> groups;

    /**
     * Load imbalance: max/mean of per-PE words and of per-value-
     * channel delivered bytes.  1.0 = perfectly balanced; the PE
     * score is 0 when per_pe data is absent.
     */
    double peImbalance = 0.0;
    double channelImbalance = 0.0;

    Binding binding = Binding::PeIssue;
    std::string rationale;

    /** Preprocessing stage shares (empty for .spasm inputs). */
    std::vector<StageBreakdown> preprocess;
};

/**
 * Attribute @p file (must be `spasm-stats-v1` with a `sim` section).
 * @p top_n bounds the per-group stall list.
 */
BottleneckReport attributeBottleneck(const StatsFile &file,
                                     int top_n = 3);

/** Region-table coverage below this fraction of wall-clock makes a
 *  host verdict suspect (HostAttribution::lowCoverage). */
inline constexpr double kMinTrustworthyCoverage = 0.95;

/** One profiled region echoed into the host verdict. */
struct HostRegionSlice
{
    std::string path; ///< ';'-joined region path
    double selfMs = 0.0;
    double wallFraction = 0.0; ///< of total wall
};

/**
 * The host-side verdict over one `spasm-prof-v1` record (the engine
 * behind `spasm report` on a profile): is the run's wall-clock spent
 * *simulating hardware* (inside `sim.run`, dominated by the cycle
 * loop — expected, healthy) or on the *host side* (preprocessing,
 * schedule exploration, I/O — a software bottleneck worth fixing)?
 */
struct HostAttribution
{
    std::string inputName;
    double wallMs = 0.0;
    double coverage = 0.0; ///< wall fraction inside named regions

    /**
     * coverage < kMinTrustworthyCoverage: enough of the wall-clock is
     * outside every named region that the verdict may mis-attribute.
     * Under-accounted samplers (a hot loop advancing its tick count
     * without booking samples — e.g. a fast-forwarding simulator) are
     * the classic cause, so the rationale carries the caveat.
     */
    bool lowCoverage = false;

    double simMs = 0.0;    ///< total inside `sim.run`
    double hostMs = 0.0;   ///< wall - simMs
    bool hostBound = false;

    /** Largest self-time region on the binding side. */
    std::string bindingRegion;
    double bindingSelfMs = 0.0;

    /** Top regions by self time, descending (both sides). */
    std::vector<HostRegionSlice> topRegions;

    /** Host hardware counters (echoed from the record). */
    bool countersAvailable = false;
    std::string countersNote; ///< degradation note when unavailable
    double ipc = 0.0;
    double cacheMissRate = 0.0;
    double branchMissRate = 0.0;

    /** Simulation throughput: simulated cycles per host second. */
    double simCyclesPerHostSec = 0.0;

    std::string rationale;
};

/**
 * Attribute @p file (must be `spasm-prof-v1`).  @p top_n bounds the
 * region list.
 */
HostAttribution attributeHost(const StatsFile &file, int top_n = 8);

} // namespace report
} // namespace spasm

#endif // SPASM_REPORT_ATTRIBUTION_HH
