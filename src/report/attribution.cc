#include "report/attribution.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "hw/config.hh"
#include "support/logging.hh"

namespace spasm {
namespace report {

namespace {

/** The six stall causes as serialized under sim.stalls. */
constexpr const char *kStallKeys[] = {"value", "position", "xvec",
                                      "flush", "hazard", "fault"};

/** Stall causes that wait on an HBM resource (vs. hazard, a datapath
 *  dependency, and fault, injected-fault recovery overhead). */
bool
isMemoryStall(const std::string &cause)
{
    return cause != "hazard" && cause != "fault";
}

std::vector<StallSlice>
stallSlices(const JsonValue &stalls, double total_pe_cycles)
{
    std::vector<StallSlice> out;
    for (const char *key : kStallKeys) {
        StallSlice s;
        s.cause = key;
        s.cycles = stalls.numberOr(key, 0.0);
        s.fraction =
            total_pe_cycles > 0.0 ? s.cycles / total_pe_cycles : 0.0;
        out.push_back(std::move(s));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const StallSlice &a, const StallSlice &b) {
                         return a.cycles > b.cycles;
                     });
    return out;
}

std::string
fmt(const char *format, double a, double b = 0.0, double c = 0.0)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), format, a, b, c);
    return buf;
}

} // namespace

std::string
bindingName(Binding binding)
{
    switch (binding) {
      case Binding::HbmBandwidth:
        return "hbm-bandwidth";
      case Binding::PeIssue:
        return "pe-issue";
      case Binding::LoadImbalance:
        return "load-imbalance";
    }
    return "?";
}

BottleneckReport
attributeBottleneck(const StatsFile &file, int top_n)
{
    if (file.schema != "spasm-stats-v1")
        spasm_fatal("%s: bottleneck attribution needs a "
                    "spasm-stats-v1 record, got '%s'",
                    file.path.c_str(), file.schema.c_str());
    const JsonValue *sim = file.root.find("sim");
    if (sim == nullptr)
        spasm_fatal("%s: no 'sim' section — run came from a "
                    "software-only pipeline?", file.path.c_str());

    BottleneckReport rep;
    const JsonValue *input = file.root.find("input");
    rep.inputName =
        input != nullptr ? input->stringOr("name", "?") : "?";
    rep.cycles = sim->numberOr("cycles", 0.0);

    const JsonValue *config = file.root.find("config");
    double peak_gflops = 0.0, bandwidth_gbs = 0.0;
    if (config != nullptr) {
        rep.configName = config->stringOr("name", "?");
        rep.peGroups =
            static_cast<int>(config->numberOr("pe_groups", 0.0));
        rep.numPes = rep.peGroups * kPesPerGroup;
        peak_gflops = config->numberOr("peak_gflops", 0.0);
        bandwidth_gbs = config->numberOr("bandwidth_gbs", 0.0);
    }
    const JsonValue *per_pe = sim->find("per_pe");
    if (rep.numPes == 0 && per_pe != nullptr)
        rep.numPes = static_cast<int>(per_pe->array.size());
    if (rep.numPes == 0)
        spasm_fatal("%s: cannot determine PE count (no config echo "
                    "and no per_pe section)", file.path.c_str());

    const double total_pe_cycles = rep.cycles * rep.numPes;

    // Cycle budget: busy / stalled / idle.
    const double busy = sim->numberOr("busy_pe_cycles", 0.0);
    rep.stalls = stallSlices(sim->at("stalls"), total_pe_cycles);
    double stall_cycles = 0.0, mem_stall_cycles = 0.0;
    for (const auto &s : rep.stalls) {
        stall_cycles += s.cycles;
        if (isMemoryStall(s.cause))
            mem_stall_cycles += s.cycles;
    }
    if (total_pe_cycles > 0.0) {
        rep.busyFraction = busy / total_pe_cycles;
        rep.stallFraction = stall_cycles / total_pe_cycles;
        rep.idleFraction = std::max(
            0.0, 1.0 - rep.busyFraction - rep.stallFraction);
    }

    // Roofline placement from bytes moved vs. useful FLOPs.
    const JsonValue *bytes = sim->find("bytes");
    double total_bytes = 0.0;
    if (bytes != nullptr) {
        for (const auto &kv : bytes->object)
            total_bytes += kv.second.isNumber() ? kv.second.number
                                                : 0.0;
    }
    double flops = 0.0;
    if (input != nullptr) {
        // Paper metric: 2*nnz MACs + one y add per row.
        flops = 2.0 * input->numberOr("nnz", 0.0) +
                input->numberOr("rows", 0.0);
    }
    rep.roofline =
        placeOnRoofline(flops, total_bytes,
                        sim->numberOr("seconds", 0.0), peak_gflops,
                        bandwidth_gbs);

    // Per-group aggregation of the per-PE attribution.
    std::vector<double> pe_words;
    if (per_pe != nullptr && !per_pe->array.empty()) {
        const int pes = static_cast<int>(per_pe->array.size());
        const int groups = (pes + kPesPerGroup - 1) / kPesPerGroup;
        for (int g = 0; g < groups; ++g) {
            GroupAttribution ga;
            ga.group = g;
            double group_busy = 0.0;
            int group_pes = 0;
            std::vector<StallSlice> stalls;
            for (const char *key : kStallKeys)
                stalls.push_back({key, 0.0, 0.0});
            for (int p = g * kPesPerGroup;
                 p < std::min(pes, (g + 1) * kPesPerGroup); ++p) {
                const JsonValue &pe = per_pe->array[p];
                ++group_pes;
                ga.words += pe.numberOr("words", 0.0);
                group_busy += pe.numberOr("busy", 0.0);
                const JsonValue *ps = pe.find("stalls");
                if (ps != nullptr) {
                    for (auto &s : stalls)
                        s.cycles += ps->numberOr(s.cause, 0.0);
                }
                pe_words.push_back(pe.numberOr("words", 0.0));
            }
            const double group_cycles = rep.cycles * group_pes;
            ga.busyFraction = group_cycles > 0.0
                                  ? group_busy / group_cycles
                                  : 0.0;
            for (auto &s : stalls) {
                s.fraction = group_cycles > 0.0
                                 ? s.cycles / group_cycles
                                 : 0.0;
            }
            std::stable_sort(
                stalls.begin(), stalls.end(),
                [](const StallSlice &a, const StallSlice &b) {
                    return a.cycles > b.cycles;
                });
            if (top_n >= 0 &&
                stalls.size() > static_cast<std::size_t>(top_n))
                stalls.resize(top_n);
            ga.topStalls = std::move(stalls);
            rep.groups.push_back(std::move(ga));
        }
    }

    // Load imbalance: max/mean words across PEs…
    if (!pe_words.empty()) {
        double sum = 0.0, mx = 0.0;
        for (double w : pe_words) {
            sum += w;
            mx = std::max(mx, w);
        }
        const double mean = sum / pe_words.size();
        rep.peImbalance = mean > 0.0 ? mx / mean : 0.0;
    }
    // …and max/mean delivered bytes across the sparse-value channels
    // (the channels that carry the balanced word stream).
    const JsonValue *channels = sim->find("channels");
    if (channels != nullptr) {
        double sum = 0.0, mx = 0.0;
        std::size_t n = 0;
        for (const auto &ch : channels->array) {
            const std::string name = ch.stringOr("name", "");
            if (name.rfind("hbm.val.", 0) != 0)
                continue;
            const double b = ch.numberOr("bytes", 0.0);
            sum += b;
            mx = std::max(mx, b);
            ++n;
        }
        if (n > 0 && sum > 0.0)
            rep.channelImbalance = mx / (sum / n);
    }

    // Verdict: the largest cycle bucket names the binding resource.
    // Hazard stalls count toward the issue side (datapath, not HBM).
    const double hazard_frac =
        total_pe_cycles > 0.0
            ? (stall_cycles - mem_stall_cycles) / total_pe_cycles
            : 0.0;
    const double mem_frac = rep.stallFraction - hazard_frac;
    const double issue_frac = rep.busyFraction + hazard_frac;
    if (mem_frac >= issue_frac && mem_frac >= rep.idleFraction) {
        rep.binding = Binding::HbmBandwidth;
        rep.rationale =
            fmt("PEs spend %.1f%% of cycles stalled on HBM "
                "resources; top cause: ",
                100.0 * mem_frac) +
            (rep.stalls.empty() ? std::string("?")
                                : rep.stalls[0].cause);
    } else if (issue_frac >= rep.idleFraction) {
        rep.binding = Binding::PeIssue;
        rep.rationale =
            fmt("PEs are busy issuing %.1f%% of cycles — the word "
                "stream, not memory, limits the run",
                100.0 * issue_frac);
    } else {
        rep.binding = Binding::LoadImbalance;
        rep.rationale =
            fmt("PEs are idle (not stalled) %.1f%% of cycles; "
                "PE imbalance %.2fx",
                100.0 * rep.idleFraction, rep.peImbalance);
    }
    if (rep.roofline.attainableGflops > 0.0) {
        rep.rationale +=
            fmt("; roofline: at %.1f%% of the ",
                100.0 * rep.roofline.roofFraction) +
            (rep.roofline.memoryBound ? "bandwidth" : "compute") +
            fmt(" roof (OI %.3f flop/B vs machine balance %.3f)",
                rep.roofline.opIntensity,
                rep.roofline.machineBalance);
    }

    // Preprocessing breakdown.
    const JsonValue *pre = file.root.find("preprocess");
    if (pre != nullptr) {
        const double total = pre->numberOr("total_ms", 0.0);
        for (const auto &kv : pre->object) {
            if (kv.first == "total_ms" || !kv.second.isNumber())
                continue;
            StageBreakdown stage;
            stage.stage = kv.first;
            stage.ms = kv.second.number;
            stage.fraction = total > 0.0 ? stage.ms / total : 0.0;
            rep.preprocess.push_back(std::move(stage));
        }
    }

    return rep;
}

namespace {

/** A region inside the simulated-hardware clock domain: `sim.run`
 *  itself or anything nested under it. */
bool
isSimRegion(const std::string &path)
{
    return path == "sim.run" ||
           path.find("sim.run;") != std::string::npos ||
           path.rfind(";sim.run") != std::string::npos;
}

} // namespace

HostAttribution
attributeHost(const StatsFile &file, int top_n)
{
    if (file.schema != "spasm-prof-v1") {
        spasm_fatal("%s: host attribution needs a spasm-prof-v1 "
                    "record, got '%s'",
                    file.path.c_str(), file.schema.c_str());
    }

    HostAttribution rep;
    const JsonValue *input = file.root.find("input");
    if (input != nullptr)
        rep.inputName = input->stringOr("name", "?");
    rep.wallMs = file.root.numberOr("wall_ms", 0.0);
    rep.coverage = file.root.numberOr("coverage", 0.0);
    rep.lowCoverage =
        rep.coverage > 0.0 && rep.coverage < kMinTrustworthyCoverage;

    // Walk the region table: `sim.run` totals give the simulated
    // side; the largest self-time region on each side names its
    // binding candidate.
    double sim_ms = 0.0;
    std::string sim_binding, host_binding;
    double sim_binding_self = 0.0, host_binding_self = 0.0;
    std::vector<HostRegionSlice> slices;
    const JsonValue *regions = file.root.find("regions");
    if (regions != nullptr && regions->isArray()) {
        for (const auto &r : regions->array) {
            const std::string path = r.stringOr("path", "?");
            const std::string name = r.stringOr("name", "?");
            const double self_ms = r.numberOr("self_ms", 0.0);
            if (name == "sim.run")
                sim_ms += r.numberOr("total_ms", 0.0);
            if (isSimRegion(path)) {
                if (self_ms > sim_binding_self) {
                    sim_binding_self = self_ms;
                    sim_binding = path;
                }
            } else if (self_ms > host_binding_self) {
                host_binding_self = self_ms;
                host_binding = path;
            }
            HostRegionSlice slice;
            slice.path = path;
            slice.selfMs = self_ms;
            slice.wallFraction =
                rep.wallMs > 0.0 ? self_ms / rep.wallMs : 0.0;
            slices.push_back(std::move(slice));
        }
    }
    std::stable_sort(slices.begin(), slices.end(),
                     [](const HostRegionSlice &a,
                        const HostRegionSlice &b) {
                         return a.selfMs > b.selfMs;
                     });
    if (top_n > 0 &&
        slices.size() > static_cast<std::size_t>(top_n))
        slices.resize(static_cast<std::size_t>(top_n));
    rep.topRegions = std::move(slices);

    rep.simMs = std::min(sim_ms, rep.wallMs);
    rep.hostMs = rep.wallMs - rep.simMs;
    rep.hostBound = rep.hostMs > rep.simMs;
    rep.bindingRegion = rep.hostBound ? host_binding : sim_binding;
    rep.bindingSelfMs =
        rep.hostBound ? host_binding_self : sim_binding_self;

    const JsonValue *counters = file.root.find("host_counters");
    if (counters != nullptr) {
        const JsonValue *avail = counters->find("available");
        rep.countersAvailable = avail != nullptr &&
            avail->kind == JsonValue::Kind::Bool && avail->boolean;
        rep.countersNote = counters->stringOr("degradation");
        rep.ipc = counters->numberOr("ipc", 0.0);
        rep.cacheMissRate =
            counters->numberOr("cache_miss_rate", 0.0);
        rep.branchMissRate =
            counters->numberOr("branch_miss_rate", 0.0);
    }
    const JsonValue *sim = file.root.find("sim");
    if (sim != nullptr) {
        rep.simCyclesPerHostSec =
            sim->numberOr("cycles_per_host_sec", 0.0);
    }

    const double sim_frac =
        rep.wallMs > 0.0 ? rep.simMs / rep.wallMs : 0.0;
    if (rep.hostBound) {
        rep.rationale =
            fmt("host-bound: %.1f%% of wall-clock is spent outside "
                "the simulated-hardware loop",
                100.0 * (1.0 - sim_frac)) +
            (rep.bindingRegion.empty()
                 ? std::string()
                 : "; binding host region is '" + rep.bindingRegion +
                       "' (" + fmt("%.2f ms self", rep.bindingSelfMs) +
                       ")");
    } else {
        rep.rationale =
            fmt("simulated-hardware-bound: %.1f%% of wall-clock is "
                "inside sim.run",
                100.0 * sim_frac) +
            (rep.bindingRegion.empty()
                 ? std::string()
                 : "; dominated by '" + rep.bindingRegion + "' (" +
                       fmt("%.2f ms self", rep.bindingSelfMs) + ")");
    }
    if (rep.lowCoverage) {
        rep.rationale +=
            fmt("; CAUTION: region coverage is only %.1f%% of "
                "wall-clock (< %.0f%%) — the verdict may "
                "mis-attribute unsampled phases",
                100.0 * rep.coverage,
                100.0 * kMinTrustworthyCoverage);
    }
    return rep;
}

} // namespace report
} // namespace spasm
