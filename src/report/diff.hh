/**
 * @file
 * Structured diff between two loaded stats/bench files with
 * per-metric tolerances — the engine behind `spasm compare`.
 *
 * Tolerance policy (see docs/regression.md for the rationale):
 *  - Metrics that are integral in both files (cycle, word and stall
 *    counts under `--deterministic`) compare exactly, token to token:
 *    zero tolerance.
 *  - Fractional metrics get a relative band; the default 1e-9 only
 *    absorbs decimal-formatting and libm last-ulp jitter between
 *    builds, so a real change still fails.
 *  - Wall-clock metrics (`preprocess.*`, `*_ms`, `*_us` and bench
 *    time columns) get a wide percentage band plus an absolute floor,
 *    because machines differ; under `--deterministic` they are zeroed
 *    and compare exactly anyway.
 *  - A metric present in the baseline but not the candidate fails
 *    the comparison (schema or coverage regressed); a metric only in
 *    the candidate warns (backward-compatible growth).
 *  - `provenance.*` and identity strings never gate — mismatches
 *    (different git revision, build type, scale, input name) are
 *    reported as comparability warnings.
 */

#ifndef SPASM_REPORT_DIFF_HH
#define SPASM_REPORT_DIFF_HH

#include <cstddef>
#include <string>
#include <vector>

#include "report/stats_file.hh"

namespace spasm {
namespace report {

/** How one metric (glob pattern) is allowed to move. */
struct ToleranceRule
{
    std::string pattern; ///< glob over the flattened path ('*', '?')
    double rel = 0.0;    ///< |c-b| / max(|b|,|c|) allowed
    double absFloor = 0.0; ///< |c-b| below this always passes

    /** True when no explicit pattern matched and the spec default
     *  applies.  The default band never loosens integral metrics —
     *  deterministic counts stay zero-tolerance. */
    bool fromDefault = false;
};

/** Ordered rule set; the first matching rule wins. */
struct ToleranceSpec
{
    std::vector<ToleranceRule> rules;

    /** Band for fractional metrics no rule matches. */
    double defaultRel = 1e-9;

    /** When true, every metric compares exactly (token equality for
     *  integrals, bit-for-bit double equality otherwise). */
    bool strict = false;

    /** The stock policy described in the file comment. */
    static ToleranceSpec defaults();

    /** rel/absFloor applicable to @p path under this spec. */
    ToleranceRule ruleFor(const std::string &path) const;
};

/** Glob match with '*' (any run) and '?' (any one char). */
bool globMatch(const std::string &pattern, const std::string &text);

/** Outcome for one metric path. */
enum class DeltaStatus
{
    Equal,     ///< identical
    Within,    ///< differs, inside tolerance
    Regressed, ///< outside tolerance, worse (direction-aware)
    Improved,  ///< outside tolerance, better — still gates (stale
               ///< baseline: re-bless)
    Missing,   ///< in baseline only — gates
    Added,     ///< in candidate only — warns
};

/** One compared metric. */
struct MetricDelta
{
    std::string path;
    double baseline = 0.0;
    double candidate = 0.0;
    double absDelta = 0.0;
    double relDelta = 0.0; ///< |c-b| / max(|b|,|c|); 0 when equal
    double relAllowed = 0.0;
    DeltaStatus status = DeltaStatus::Equal;
};

/** Full comparison outcome. */
struct DiffReport
{
    std::string baselinePath;
    std::string candidatePath;

    /** Every compared/unmatched metric, baseline document order
     *  (candidate-only metrics appended). */
    std::vector<MetricDelta> deltas;

    /** Comparability warnings (provenance/context mismatches,
     *  candidate-only metrics). */
    std::vector<std::string> warnings;

    std::size_t numCompared = 0;
    std::size_t numEqual = 0;
    std::size_t numWithin = 0;

    /** Deltas that gate (Regressed/Improved/Missing), worst first. */
    std::vector<const MetricDelta *> failures() const;

    /** True iff nothing gates: the candidate passes. */
    bool ok() const;
};

/** Compare @p candidate against @p baseline under @p spec. */
DiffReport diffStats(const StatsFile &baseline,
                     const StatsFile &candidate,
                     const ToleranceSpec &spec);

/** True when @p path names a metric where larger is better
 *  (throughput/utilization/occupancy); used to label direction. */
bool higherIsBetter(const std::string &path);

} // namespace report
} // namespace spasm

#endif // SPASM_REPORT_DIFF_HH
