#include "report/golden.hh"

namespace spasm {
namespace report {

const std::vector<GoldenSpec> &
goldenSpecs()
{
    // One dense-ish, one mid-density and one near-diagonal workload
    // (Table-II density order), each on a different Table-IV
    // bitstream, plus the fig12 headline pair of cfd2 on the largest
    // configuration.
    static const std::vector<GoldenSpec> specs = {
        {"raefsky3", "SPASM_3_2"},
        {"bbmat", "SPASM_3_4"},
        {"cfd2", "SPASM_4_1"},
        {"t2em", "SPASM_3_4"},
    };
    return specs;
}

std::string
goldenFileName(const GoldenSpec &spec)
{
    return spec.workload + "_" + spec.config + ".json";
}

} // namespace report
} // namespace spasm
