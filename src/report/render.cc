#include "report/render.hh"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "support/table.hh"

namespace spasm {
namespace report {

namespace {

std::string
num(double v)
{
    if (v == 0.0)
        return "0";
    char buf[64];
    if (std::abs(v) >= 1.0 && v == std::floor(v) &&
        std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    }
    return buf;
}

std::string
pct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
    return buf;
}

const char *
statusName(DeltaStatus s)
{
    switch (s) {
      case DeltaStatus::Equal:
        return "equal";
      case DeltaStatus::Within:
        return "within";
      case DeltaStatus::Regressed:
        return "REGRESSED";
      case DeltaStatus::Improved:
        return "IMPROVED";
      case DeltaStatus::Missing:
        return "MISSING";
      case DeltaStatus::Added:
        return "added";
    }
    return "?";
}

std::string
deltaCell(const MetricDelta &d)
{
    if (d.status == DeltaStatus::Missing)
        return "(absent)";
    if (d.status == DeltaStatus::Added)
        return "(new)";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.4g (%.3g%%)", d.absDelta,
                  100.0 * d.relDelta);
    return buf;
}

std::vector<const MetricDelta *>
rowsToShow(const DiffReport &diff, bool show_all)
{
    std::vector<const MetricDelta *> rows;
    for (const auto &d : diff.deltas) {
        const bool gating = d.status == DeltaStatus::Regressed ||
                            d.status == DeltaStatus::Improved ||
                            d.status == DeltaStatus::Missing;
        if (gating || d.status == DeltaStatus::Added ||
            (show_all && d.status == DeltaStatus::Within))
            rows.push_back(&d);
    }
    return rows;
}

std::string
summaryLine(const DiffReport &diff)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%zu metrics compared: %zu equal, %zu within "
                  "tolerance, %zu failing",
                  diff.numCompared, diff.numEqual, diff.numWithin,
                  diff.failures().size());
    return buf;
}

} // namespace

void
renderDiffText(std::ostream &os, const DiffReport &diff,
               bool show_all)
{
    os << (diff.ok() ? "PASS" : "FAIL") << ": " << diff.candidatePath
       << " vs baseline " << diff.baselinePath << "\n"
       << summaryLine(diff) << "\n";
    for (const auto &w : diff.warnings)
        os << "warning: " << w << "\n";

    const auto rows = rowsToShow(diff, show_all);
    if (!rows.empty()) {
        os << "\n";
        TextTable table;
        table.setHeader(
            {"metric", "baseline", "candidate", "delta", "status"});
        for (const MetricDelta *d : rows) {
            table.addRow({d->path, num(d->baseline),
                          num(d->candidate), deltaCell(*d),
                          statusName(d->status)});
        }
        table.print(os);
    }
}

void
renderDiffMarkdown(std::ostream &os, const DiffReport &diff)
{
    os << "### " << (diff.ok() ? "✅ PASS" : "❌ FAIL") << " — `"
       << diff.candidatePath << "` vs `" << diff.baselinePath
       << "`\n\n"
       << summaryLine(diff) << "\n\n";
    for (const auto &w : diff.warnings)
        os << "> ⚠️ " << w << "\n";
    if (!diff.warnings.empty())
        os << "\n";

    const auto rows = rowsToShow(diff, false);
    if (!rows.empty()) {
        os << "| metric | baseline | candidate | delta | status |\n"
           << "|---|---:|---:|---:|---|\n";
        for (const MetricDelta *d : rows) {
            os << "| `" << d->path << "` | " << num(d->baseline)
               << " | " << num(d->candidate) << " | "
               << deltaCell(*d) << " | " << statusName(d->status)
               << " |\n";
        }
        os << "\n";
    }
}

namespace {

void
renderBottleneck(std::ostream &os, const BottleneckReport &rep,
                 bool markdown)
{
    const char *h = markdown ? "### " : "== ";
    const char *he = markdown ? "" : " ==";
    const char *b = markdown ? "**" : "";

    os << h << "Bottleneck report: " << rep.inputName << " on "
       << rep.configName << he << "\n\n";
    os << b << "binding resource: " << bindingName(rep.binding) << b
       << "\n";
    os << rep.rationale << "\n\n";

    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "cycles %.0f | PEs %d (%d groups) | achieved "
                  "%.2f GFLOP/s of %.2f attainable (%s roof, peak "
                  "%.1f, OI %.3f flop/B)\n\n",
                  rep.cycles, rep.numPes, rep.peGroups,
                  rep.roofline.achievedGflops,
                  rep.roofline.attainableGflops,
                  rep.roofline.memoryBound ? "bandwidth" : "compute",
                  rep.roofline.peakGflops, rep.roofline.opIntensity);
    os << buf;

    if (markdown) {
        os << "| PE-cycle budget | share |\n|---|---:|\n"
           << "| busy (issuing) | " << pct(rep.busyFraction)
           << " |\n"
           << "| stalled | " << pct(rep.stallFraction) << " |\n"
           << "| idle (no work) | " << pct(rep.idleFraction)
           << " |\n\n";
        os << "| stall cause | cycles | share of PE-cycles |\n"
           << "|---|---:|---:|\n";
        for (const auto &s : rep.stalls) {
            os << "| " << s.cause << " | " << num(s.cycles) << " | "
               << pct(s.fraction) << " |\n";
        }
        os << "\n";
    } else {
        TextTable budget("PE-cycle budget");
        budget.setHeader({"bucket", "share"});
        budget.addRow({"busy (issuing)", pct(rep.busyFraction)});
        budget.addRow({"stalled", pct(rep.stallFraction)});
        budget.addRow({"idle (no work)", pct(rep.idleFraction)});
        budget.print(os);
        os << "\n";

        TextTable stalls("Stall attribution (aggregate)");
        stalls.setHeader({"cause", "cycles", "share"});
        for (const auto &s : rep.stalls)
            stalls.addRow({s.cause, num(s.cycles), pct(s.fraction)});
        stalls.print(os);
        os << "\n";
    }

    if (!rep.groups.empty()) {
        if (markdown) {
            os << "| PE group | words | busy | top stalls |\n"
               << "|---:|---:|---:|---|\n";
        }
        TextTable groups("Per-PE-group attribution");
        groups.setHeader({"group", "words", "busy", "top stalls"});
        for (const auto &g : rep.groups) {
            std::string top;
            for (const auto &s : g.topStalls) {
                if (!top.empty())
                    top += ", ";
                top += s.cause + " " + pct(s.fraction);
            }
            if (markdown) {
                os << "| " << g.group << " | " << num(g.words)
                   << " | " << pct(g.busyFraction) << " | " << top
                   << " |\n";
            } else {
                groups.addRow({std::to_string(g.group),
                               num(g.words), pct(g.busyFraction),
                               top});
            }
        }
        if (markdown)
            os << "\n";
        else {
            groups.print(os);
            os << "\n";
        }
    }

    std::snprintf(buf, sizeof(buf),
                  "load imbalance (max/mean): PEs %.3fx, value "
                  "channels %.3fx\n\n",
                  rep.peImbalance, rep.channelImbalance);
    os << buf;

    if (!rep.preprocess.empty()) {
        if (markdown) {
            os << "| preprocessing stage | ms | share |\n"
               << "|---|---:|---:|\n";
            for (const auto &s : rep.preprocess) {
                os << "| " << s.stage << " | " << num(s.ms) << " | "
                   << pct(s.fraction) << " |\n";
            }
            os << "\n";
        } else {
            TextTable pre("Preprocessing breakdown");
            pre.setHeader({"stage", "ms", "share"});
            for (const auto &s : rep.preprocess)
                pre.addRow({s.stage, num(s.ms), pct(s.fraction)});
            pre.print(os);
            os << "\n";
        }
    }
}

} // namespace

void
renderBottleneckText(std::ostream &os, const BottleneckReport &rep)
{
    renderBottleneck(os, rep, false);
}

void
renderBottleneckMarkdown(std::ostream &os,
                         const BottleneckReport &rep)
{
    renderBottleneck(os, rep, true);
}

namespace {

void
renderHostAttribution(std::ostream &os, const HostAttribution &rep,
                      bool markdown)
{
    const char *verdict =
        rep.hostBound ? "HOST-BOUND" : "SIMULATED-HARDWARE-BOUND";
    if (markdown) {
        os << "## Host attribution: " << rep.inputName << "\n\n"
           << "**" << verdict << "** — " << rep.rationale << "\n\n";
    } else {
        os << "host attribution: " << rep.inputName << "\n"
           << "verdict: " << verdict << "\n"
           << rep.rationale << "\n\n";
    }

    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "wall %.2f ms = sim %.2f ms + host %.2f ms "
                  "(coverage %.1f%%)\n",
                  rep.wallMs, rep.simMs, rep.hostMs,
                  100.0 * rep.coverage);
    os << buf;
    if (rep.simCyclesPerHostSec > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "simulation throughput: %.3g simulated "
                      "cycles per host second\n",
                      rep.simCyclesPerHostSec);
        os << buf;
    }
    if (rep.countersAvailable) {
        std::snprintf(buf, sizeof(buf),
                      "host counters: IPC %.2f, cache-miss rate "
                      "%.2f%%, branch-miss rate %.2f%%\n",
                      rep.ipc, 100.0 * rep.cacheMissRate,
                      100.0 * rep.branchMissRate);
        os << buf;
    } else {
        os << "host counters: unavailable ("
           << (rep.countersNote.empty() ? "no note"
                                        : rep.countersNote)
           << ")\n";
    }
    os << "\n";

    if (!rep.topRegions.empty()) {
        if (markdown) {
            os << "| region | self ms | wall share |\n"
               << "|---|---:|---:|\n";
            for (const auto &r : rep.topRegions) {
                os << "| `" << r.path << "` | " << num(r.selfMs)
                   << " | " << pct(r.wallFraction) << " |\n";
            }
            os << "\n";
        } else {
            TextTable regions("Top regions by self time");
            regions.setHeader({"region", "self ms", "wall share"});
            for (const auto &r : rep.topRegions) {
                regions.addRow({r.path, num(r.selfMs),
                                pct(r.wallFraction)});
            }
            regions.print(os);
            os << "\n";
        }
    }
}

} // namespace

void
renderHostAttributionText(std::ostream &os, const HostAttribution &rep)
{
    renderHostAttribution(os, rep, false);
}

void
renderHostAttributionMarkdown(std::ostream &os,
                              const HostAttribution &rep)
{
    renderHostAttribution(os, rep, true);
}

} // namespace report
} // namespace spasm
