/**
 * @file
 * Loader for the machine-readable run artifacts: `spasm-stats-v1`
 * records (core/stats_json.hh), `spasm-batch-v1` campaign records
 * (core/batch.hh) and `spasm-bench-v1` tables
 * (support/table.hh), flattened into an ordered list of named numeric
 * metrics that the diff (report/diff.hh) and attribution
 * (report/attribution.hh) layers consume.
 *
 * Flattening rules:
 *  - stats-v1: every numeric leaf becomes `section.sub.field`, array
 *    elements `section[3].field`.  `schema*`, `generator`,
 *    `provenance` and `spans` are metadata, not metrics — provenance
 *    is kept aside for comparability warnings, spans carry wall-clock
 *    timings with run-dependent cardinality.  String leaves (input
 *    and config names) land in `context` for the same warning path.
 *  - bench-v1: each table cell becomes `rows.<first column>.<column>`;
 *    cells whose text parses as a number (optionally suffixed, e.g.
 *    "1.23x") are metrics, the rest context.
 */

#ifndef SPASM_REPORT_STATS_FILE_HH
#define SPASM_REPORT_STATS_FILE_HH

#include <map>
#include <string>
#include <vector>

#include "support/json_value.hh"

namespace spasm {
namespace report {

/** One flattened numeric metric. */
struct Metric
{
    std::string path;  ///< e.g. "sim.stalls.value"
    double value = 0.0;
    std::string raw;   ///< source token, exact for integral metrics
    bool integral = false;
};

/** One loaded stats/bench file. */
struct StatsFile
{
    std::string path;
    std::string schema;  ///< "spasm-{stats,batch,bench}-v1"
    int schemaMinor = 0;
    JsonValue root;      ///< full document (attribution reads this)

    /** Numeric metrics in document order. */
    std::vector<Metric> metrics;

    /** Provenance echo (git, build_type, compiler, threads, scale). */
    std::map<std::string, std::string> provenance;

    /** Non-numeric identity fields (input.name, config.name, ...). */
    std::map<std::string, std::string> context;

    /** Metric lookup by flattened path; nullptr when absent. */
    const Metric *find(const std::string &metric_path) const;
};

/** Load and flatten; fatal() on I/O, parse or schema errors. */
StatsFile loadStatsFile(const std::string &path);

} // namespace report
} // namespace spasm

#endif // SPASM_REPORT_STATS_FILE_HH
