/**
 * @file
 * Deployment demo: the paper's production model, end to end.
 *
 * A deployment expects a family of matrices (here: two CFD-style
 * workloads).  It (1) selects one template portfolio for the set with
 * the multi-matrix Algorithm 3, (2) prepares and persists each
 * expected matrix as a .spasm file (preprocess once), (3) reloads the
 * files and executes SpMV on the simulated accelerator, and (4) shows
 * what happens when an unexpected (anti-diagonal) matrix arrives:
 * it still runs — the abstract's flexibility claim — just with more
 * padding.
 */

#include <cstdio>

#include "core/deployment.hh"
#include "format/serialize.hh"
#include "support/error.hh"
#include "workloads/suite.hh"

namespace {

using namespace spasm;

void
runPrepared(const SpasmDeployment &dep, const PreparedMatrix &prep,
            const CooMatrix &m, const char *label)
{
    const auto x = SpasmFramework::defaultX(m.cols());
    std::vector<Value> y(m.rows(), 0.0f);
    const RunStats stats = dep.execute(prep, x, y);

    // Golden check against the reference.
    std::vector<Value> ref(m.rows(), 0.0f);
    m.spmv(x, ref);
    double max_err = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        max_err = std::max(max_err,
                           std::abs(static_cast<double>(y[i]) -
                                    ref[i]));
    }

    std::printf("  %-12s %-10s tile %-5d padding %5.1f%%  "
                "%6.1f GFLOP/s  max err %.2g\n",
                label, prep.schedule.config.name().c_str(),
                prep.schedule.tileSize, 100.0 * prep.paddingRate,
                stats.gflops, max_err);
}

} // namespace

int
main()
{
    using namespace spasm;
    const Scale scale = scaleFromEnv();

    // 1. Build the deployment around the expected matrix family.
    const CooMatrix cfd2 = generateWorkload("cfd2", scale);
    const CooMatrix bbmat = generateWorkload("bbmat", scale);
    const auto deployment = SpasmDeployment::build({&cfd2, &bbmat});
    std::printf("deployment portfolio: %d (%s)\n\n",
                deployment.portfolio().id(),
                deployment.portfolio().name().c_str());

    // 2. Preprocess once and persist.
    std::printf("-- preparing and persisting the expected family --\n");
    const auto prep_cfd2 = deployment.prepare(cfd2);
    const auto prep_bbmat = deployment.prepare(bbmat);
    writeSpasmFile(prep_cfd2.encoded, "/tmp/spasm_demo_cfd2.spasm");
    writeSpasmFile(prep_bbmat.encoded, "/tmp/spasm_demo_bbmat.spasm");
    std::printf("  wrote /tmp/spasm_demo_{cfd2,bbmat}.spasm "
                "(%.0f + %.0f KiB)\n\n",
                prep_cfd2.encoded.encodedBytes() / 1024.0,
                prep_bbmat.encoded.encodedBytes() / 1024.0);

    // 3. Reload and execute (the steady-state serving path).
    std::printf("-- serving from the persisted encodings --\n");
    PreparedMatrix served_cfd2;
    try {
        served_cfd2.encoded =
            readSpasmFile("/tmp/spasm_demo_cfd2.spasm");
    } catch (const Error &e) {
        // The persisted container is integrity-checked at load; a
        // corrupted file is reported instead of served.
        std::fprintf(stderr, "deployment_demo: %s\n", e.what());
        return 1;
    }
    served_cfd2.schedule = prep_cfd2.schedule;
    served_cfd2.paddingRate = prep_cfd2.paddingRate;
    runPrepared(deployment, served_cfd2, cfd2, "cfd2");
    runPrepared(deployment, prep_bbmat, bbmat, "bbmat");

    // 4. An unexpected matrix arrives.
    std::printf("\n-- an unexpected anti-diagonal matrix arrives --\n");
    const CooMatrix foreign = generateWorkload("c-73", scale);
    const auto prep_foreign = deployment.prepare(foreign);
    runPrepared(deployment, prep_foreign, foreign, "c-73");

    const auto own = SpasmDeployment::build({&foreign});
    const auto prep_own = own.prepare(foreign);
    std::printf("  (its own portfolio would pad %.1f%% instead of "
                "%.1f%% — the price of flexibility)\n",
                100.0 * prep_own.paddingRate,
                100.0 * prep_foreign.paddingRate);

    std::remove("/tmp/spasm_demo_cfd2.spasm");
    std::remove("/tmp/spasm_demo_bbmat.spasm");
    return 0;
}
