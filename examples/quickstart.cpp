/**
 * @file
 * Quickstart: run the complete SPASM pipeline on one matrix.
 *
 * Generates a block-structured matrix (or loads a MatrixMarket file if
 * a path is given), preprocesses it with the SPASM framework (pattern
 * analysis, template selection, decomposition, schedule exploration)
 * and executes SpMV on the cycle-level accelerator model, printing the
 * chosen configuration and the measured throughput.
 *
 * Usage: quickstart [matrix.mtx]
 */

#include <cstdio>

#include "core/framework.hh"
#include "sparse/matrix_market.hh"
#include "support/error.hh"
#include "workloads/generators.hh"

int
main(int argc, char **argv)
{
    using namespace spasm;

    CooMatrix m;
    if (argc > 1) {
        try {
            m = readMatrixMarket(argv[1]);
        } catch (const Error &e) {
            // Malformed input is recoverable: report and exit, the
            // diagnostic carries the offending line.
            std::fprintf(stderr, "quickstart: %s\n", e.what());
            return 1;
        }
        std::printf("loaded %s: %d x %d, %lld non-zeros\n", argv[1],
                    m.rows(), m.cols(),
                    static_cast<long long>(m.nnz()));
    } else {
        m = genBlockGrid(/*n=*/4096, /*block=*/8, /*blocks_per_row=*/9,
                         /*fill=*/1.0, /*seed=*/42);
        m.setName("demo_block_grid");
        std::printf("generated %s: %d x %d, %lld non-zeros\n",
                    m.name().c_str(), m.rows(), m.cols(),
                    static_cast<long long>(m.nnz()));
    }

    SpasmFramework framework;
    const FrameworkOutcome out = framework.run(m);

    std::printf("\n-- preprocessing --\n");
    std::printf("distinct local patterns : %zu\n",
                out.pre.histogram.distinctPatterns());
    std::printf("selected portfolio      : %d (%s)\n",
                out.pre.portfolioId,
                out.pre.portfolio.name().c_str());
    std::printf("padding rate            : %.1f%%\n",
                100.0 * out.pre.encoded.paddingRate());
    std::printf("selected hardware       : %s\n",
                out.pre.schedule.config.name().c_str());
    std::printf("selected tile size      : %d\n",
                out.pre.schedule.tileSize);
    std::printf("preprocess time         : %.1f ms "
                "(analysis %.1f, selection %.1f, decomposition %.1f, "
                "schedule %.1f)\n",
                out.pre.timings.totalMs(),
                out.pre.timings.analysisMs,
                out.pre.timings.selectionMs,
                out.pre.timings.decompositionMs,
                out.pre.timings.scheduleMs);

    std::printf("\n-- execution (cycle-level simulation) --\n");
    std::printf("cycles                  : %llu\n",
                static_cast<unsigned long long>(
                    out.exec.stats.cycles));
    std::printf("time                    : %.3f ms\n",
                out.exec.stats.seconds * 1e3);
    std::printf("throughput              : %.2f GFLOP/s\n",
                out.exec.stats.gflops);
    std::printf("bandwidth utilization   : %.1f%%\n",
                100.0 * out.exec.stats.bandwidthUtilization);
    std::printf("compute utilization     : %.1f%%\n",
                100.0 * out.exec.stats.computeUtilization);
    std::printf("max |y_sim - y_ref|     : %.3g\n",
                out.exec.maxAbsError);
    return 0;
}
