/**
 * @file
 * Pattern explorer: the software-only half of the SPASM workflow.
 *
 * For a MatrixMarket file (or a named suite workload), prints the
 * local-pattern histogram, the coverage CDF, every Table V candidate
 * portfolio's padding cost, the Algorithm 3 winner, and the storage
 * footprint of the resulting SPASM encoding next to the classic
 * formats — everything a user needs to judge whether their matrix is
 * a good SPASM target before touching hardware.
 *
 * Usage: pattern_explorer [matrix.mtx | workload-name]
 */

#include <cstdio>
#include <string>

#include "format/spasm_matrix.hh"
#include "format/storage_model.hh"
#include "pattern/analysis.hh"
#include "pattern/selection.hh"
#include "sparse/matrix_market.hh"
#include "support/error.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace spasm;

    CooMatrix m;
    const std::string arg = argc > 1 ? argv[1] : "cfd2";
    if (arg.size() > 4 &&
        arg.substr(arg.size() - 4) == ".mtx") {
        try {
            m = readMatrixMarket(arg);
        } catch (const Error &e) {
            std::fprintf(stderr, "pattern_explorer: %s\n", e.what());
            return 1;
        }
    } else {
        m = generateWorkload(arg, scaleFromEnv());
    }
    std::printf("matrix %s: %d x %d, %lld non-zeros, density %.3g\n\n",
                m.name().c_str(), m.rows(), m.cols(),
                static_cast<long long>(m.nnz()), m.density());

    const PatternGrid grid{4};
    const auto hist = PatternHistogram::analyze(m, grid);
    std::printf("-- local pattern analysis (Algorithm 2) --\n");
    std::printf("non-empty 4x4 submatrices : %llu\n",
                static_cast<unsigned long long>(
                    hist.totalOccurrences()));
    std::printf("distinct local patterns   : %zu of 65535 possible\n",
                hist.distinctPatterns());
    std::printf("patterns for 90%% coverage : %zu\n\n",
                hist.topNForCoverage(0.9));

    std::printf("top-8 patterns ('#' = non-zero cell):\n");
    const auto top = hist.topN(8);
    for (int r = 0; r < 4; ++r) {
        for (const auto &bin : top) {
            for (int c = 0; c < 4; ++c) {
                std::printf("%c", testBit(bin.mask, grid.bitOf(r, c))
                                      ? '#'
                                      : '.');
            }
            std::printf("   ");
        }
        std::printf("\n");
    }
    for (const auto &bin : top) {
        std::printf("%4.1f%%  ",
                    100.0 * static_cast<double>(bin.freq) /
                        static_cast<double>(hist.totalOccurrences()));
    }
    std::printf("\n\n");

    std::printf("-- template portfolio selection (Algorithm 3) --\n");
    const auto candidates = allCandidatePortfolios(grid);
    const auto sel = selectPortfolio(hist, candidates, 64);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        std::printf("  portfolio %zu %-22s paddings %-10llu %s\n", i,
                    candidates[i].name().c_str(),
                    static_cast<unsigned long long>(
                        sel.candidatePaddings[i]),
                    static_cast<int>(i) == sel.bestCandidate
                        ? "<== selected"
                        : "");
    }
    const auto &portfolio = candidates[sel.bestCandidate];

    std::printf("\n-- storage footprint --\n");
    const double coo = static_cast<double>(
        storageBytes(m, StorageFormat::COO));
    auto line = [&](const char *name, double bytes) {
        std::printf("  %-18s %10.0f KiB   %.2fx vs COO\n", name,
                    bytes / 1024.0, coo / bytes);
    };
    line("COO", coo);
    line("CSR", static_cast<double>(
        storageBytes(m, StorageFormat::CSR)));
    line("BSR (2x2)", static_cast<double>(
        storageBytes(m, StorageFormat::BSR, 2)));
    line("HiSparse/Serpens", static_cast<double>(
        storageBytes(m, StorageFormat::HiSparseSerpens)));
    line("SPASM", static_cast<double>(
        spasmBytesFromHistogram(hist, portfolio)));

    const SpasmEncoder encoder(portfolio, 1024);
    const auto enc = encoder.encode(m);
    std::printf("\nSPASM encoding at tile 1024: %lld words, "
                "padding rate %.1f%%\n",
                static_cast<long long>(enc.numWords()),
                100.0 * enc.paddingRate());
    return 0;
}
