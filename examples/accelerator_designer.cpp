/**
 * @file
 * Accelerator designer: the hardware half of the SPASM workflow.
 *
 * Sweeps the full (tile size x bitstream) design space for a matrix
 * (Algorithm 4), showing the analytic PERF_MODEL estimate for every
 * combination, then validates the chosen point (and the two rejected
 * bitstreams at their own best tile sizes) on the cycle-level
 * simulator — exactly the flow a user follows to pick which bitstream
 * to flash for their workload.
 *
 * Usage: accelerator_designer [workload-name]  (default: mip1)
 */

#include <cstdio>
#include <string>

#include "core/framework.hh"
#include "perf/perf_model.hh"
#include "perf/schedule.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace spasm;

    const std::string name = argc > 1 ? argv[1] : "mip1";
    const CooMatrix m = generateWorkload(name, scaleFromEnv());
    std::printf("workload %s: %d x %d, %lld nnz\n\n", name.c_str(),
                m.rows(), m.cols(),
                static_cast<long long>(m.nnz()));

    // Steps (1)-(3): analyze, select templates, decompose.
    const PatternGrid grid{4};
    const auto hist = PatternHistogram::analyze(m, grid);
    const auto candidates = allCandidatePortfolios(grid);
    const auto sel = selectPortfolio(hist, candidates, 64);
    const auto &portfolio = candidates[sel.bestCandidate];
    std::printf("selected portfolio: %d (%s)\n\n", portfolio.id(),
                portfolio.name().c_str());
    const SubmatrixProfile profile = buildProfile(m, portfolio);

    // Steps (4)+(5): the full design-space sweep.
    std::printf("-- PERF_MODEL estimates (microseconds) --\n");
    std::printf("%-10s", "tile");
    for (const auto &cfg : allHwConfigs())
        std::printf("%14s", cfg.name().c_str());
    std::printf("\n");
    for (Index t : defaultTileSizes()) {
        const GlobalComposition gc = gcGen(profile, t);
        std::printf("%-10d", t);
        for (const auto &cfg : allHwConfigs()) {
            if (t > cfg.maxTileSizeOnChip()) {
                std::printf("%14s", "n/a");
            } else {
                std::printf("%14.1f",
                            estimateSeconds(gc, cfg) * 1e6);
            }
        }
        std::printf("\n");
    }

    const ScheduleChoice best =
        exploreSchedule(profile, allHwConfigs());
    std::printf("\nAlgorithm 4 choice: %s at tile %d "
                "(estimated %.1f us)\n\n",
                best.config.name().c_str(), best.tileSize,
                best.estSeconds * 1e6);

    // Validate each bitstream at its own best tile size on the
    // cycle-level simulator.
    std::printf("-- cycle-level validation --\n");
    const std::vector<Value> x = SpasmFramework::defaultX(m.cols());
    for (const auto &cfg : allHwConfigs()) {
        const ScheduleChoice choice =
            exploreSchedule(profile, {cfg});
        const SpasmEncoder encoder(portfolio, choice.tileSize);
        const SpasmMatrix enc = encoder.encode(m);
        Accelerator accel(cfg, portfolio);
        std::vector<Value> y(m.rows(), 0.0f);
        const RunStats stats = accel.run(enc, x, y);
        std::printf("  %s tile %-6d est %8.1f us   simulated "
                    "%8.1f us   %.1f GFLOP/s   bw %.0f%%\n",
                    cfg.name().c_str(), choice.tileSize,
                    choice.estSeconds * 1e6, stats.seconds * 1e6,
                    stats.gflops,
                    100.0 * stats.bandwidthUtilization);
    }
    std::printf("\nthe bitstream with the lowest simulated time "
                "should match Algorithm 4's choice (model noise "
                "within ~20%% is expected)\n");
    return 0;
}
