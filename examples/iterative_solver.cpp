/**
 * @file
 * Iterative solver: the amortization story of Table VIII.
 *
 * Runs a conjugate-gradient solve of A x = b on a symmetric positive
 * definite stencil matrix, with every SpMV executed on the simulated
 * SPASM accelerator (preprocess once, execute per iteration).  The
 * example reports the solve's convergence, the accumulated simulated
 * accelerator time, and the iteration count at which SPASM's
 * preprocessing cost is amortized against Serpens_a24 — the paper's
 * ~298-iteration Chebyshev4 example, reproduced live.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/baseline.hh"
#include "core/framework.hh"
#include "workloads/generators.hh"

namespace {

using namespace spasm;

double
dot(const std::vector<Value> &a, const std::vector<Value> &b)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += static_cast<double>(a[i]) * b[i];
    return acc;
}

} // namespace

int
main()
{
    using namespace spasm;

    // SPD 5-point Laplacian-style stencil (diagonally dominant).
    const Index n = 4096;
    const Index k = 64;
    std::vector<Triplet> t;
    for (Index r = 0; r < n; ++r) {
        t.emplace_back(r, r, 4.5f);
        for (Index off : {Index(1), Index(-1), k, -k}) {
            const Index c = r + off;
            if (c >= 0 && c < n)
                t.emplace_back(r, c, -1.0f);
        }
    }
    const CooMatrix A = CooMatrix::fromTriplets(n, n, std::move(t));
    std::printf("solving A x = b, A: %d x %d SPD stencil, %lld nnz\n",
                n, n, static_cast<long long>(A.nnz()));

    // Preprocess once (steps 1-5).
    SpasmFramework framework;
    const PreprocessResult pre = framework.preprocess(A);
    std::printf("preprocessing: %.1f ms -> %s, tile %d, portfolio "
                "%s\n\n",
                pre.timings.totalMs(),
                pre.schedule.config.name().c_str(),
                pre.schedule.tileSize, pre.portfolio.name().c_str());

    Accelerator accel(pre.schedule.config, pre.portfolio);

    // Conjugate gradient with the accelerator as the SpMV engine.
    std::vector<Value> b(n, 1.0f);
    std::vector<Value> xsol(n, 0.0f);
    std::vector<Value> r_vec = b; // r = b - A*0
    std::vector<Value> p = r_vec;
    double rho = dot(r_vec, r_vec);
    const double rho0 = rho;

    double accel_seconds = 0.0;
    std::uint64_t accel_cycles = 0;
    int iters = 0;
    for (; iters < 200 && rho > 1e-10 * rho0; ++iters) {
        std::vector<Value> q(n, 0.0f);
        const RunStats stats = accel.run(pre.encoded, p, q,
                                         pre.policy);
        accel_seconds += stats.seconds;
        accel_cycles += stats.cycles;

        const double alpha = rho / dot(p, q);
        for (Index i = 0; i < n; ++i) {
            xsol[i] += static_cast<Value>(alpha * p[i]);
            r_vec[i] -= static_cast<Value>(alpha * q[i]);
        }
        const double rho_new = dot(r_vec, r_vec);
        const double beta = rho_new / rho;
        rho = rho_new;
        for (Index i = 0; i < n; ++i)
            p[i] = r_vec[i] + static_cast<Value>(beta * p[i]);

        if (iters % 20 == 0) {
            std::printf("  iter %3d  |r|/|b| = %.3e\n", iters,
                        std::sqrt(rho / rho0));
        }
    }
    std::printf("converged in %d iterations, |r|/|b| = %.3e\n\n",
                iters, std::sqrt(rho / rho0));

    // Verify the solution against a reference SpMV.
    std::vector<Value> check(n, 0.0f);
    A.spmv(xsol, check);
    double max_err = 0.0;
    for (Index i = 0; i < n; ++i) {
        max_err = std::max(max_err,
                           std::abs(static_cast<double>(check[i]) -
                                    b[i]));
    }
    std::printf("residual check max |Ax - b| = %.3e\n\n", max_err);

    // Amortization vs Serpens_a24 (paper section V-E4).
    SerpensModel serpens(24);
    const auto sr = serpens.run(CsrMatrix::fromCoo(A));
    const double spasm_per_iter = accel_seconds / iters;
    const double saved = sr.seconds - spasm_per_iter;
    std::printf("simulated SPASM time : %.3f ms total, %.1f us / "
                "SpMV (%llu cycles total)\n",
                accel_seconds * 1e3, spasm_per_iter * 1e6,
                static_cast<unsigned long long>(accel_cycles));
    std::printf("Serpens_a24 estimate : %.1f us / SpMV\n",
                sr.seconds * 1e6);
    if (saved > 0) {
        std::printf("preprocessing amortized after %.0f iterations "
                    "(this solve used %d)\n",
                    pre.timings.totalMs() / 1e3 / saved, iters);
    } else {
        std::printf("Serpens is faster per iteration on this "
                    "matrix; no amortization point\n");
    }
    return 0;
}
