/**
 * @file
 * spasm — command-line driver for the SPASM framework.
 *
 * Subcommands:
 *   analyze  <input>                      local-pattern statistics,
 *                                         global composition and
 *                                         portfolio selection
 *   encode   <input> -o out.spasm         preprocess + encode to a
 *            [--tile N] [--portfolio N]   binary .spasm file
 *   simulate <input> [--config NAME]      run SpMV on the cycle-level
 *            [--tile N] [--iters N]       accelerator model; --stats,
 *            [--stats] [--occupancy]      --occupancy and --trace
 *            [--trace out.csv]            expose the counters;
 *            [--stats-json out.json]      machine-readable stats
 *            [--trace-json out.json]      (spasm-stats-v1) and a
 *            [--deterministic]            Perfetto-loadable timeline
 *   verify   <input>                      all portfolios x tile sizes
 *                                         against the reference SpMV
 *   spy      <input> [-o out.pgm]         occupancy plot
 *   suite                                 list the built-in workloads
 *   compare  <baseline.json> <cand.json>  structured stats/bench diff
 *                                         with tolerances; exit 1 on
 *                                         out-of-tolerance deltas;
 *            [--wallclock-trend FILE]     render the committed
 *                                         wall-clock trajectory
 *   report   <stats.json>                 bottleneck attribution:
 *                                         roofline, stalls, imbalance
 *                                         (spasm-prof-v1 records get
 *                                         the host-vs-simulated
 *                                         verdict instead)
 *   profile  <input> [--json out.json]    self-profile one run:
 *            [--flame out.txt]            region tree, host perf
 *            [--overhead]                 counters, flamegraph
 *                                         stacks and the host-bound
 *                                         vs simulated-bound verdict
 *   bench    [--record FILE]              wall-clock the golden
 *                                         workloads; --record appends
 *                                         to the committed trajectory
 *   bless    [--dir DIR]                  regenerate the golden
 *                                         baselines (bench/baselines)
 *   tail     <telemetry.jsonl> [--follow] render a live-telemetry
 *                                         stream: progress, rate,
 *                                         EWMA ETA
 *
 * <input> is a MatrixMarket path (*.mtx), a .spasm file (simulate
 * only), or the name of a built-in Table II workload (generated at
 * SPASM_SCALE, default small).
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hh"
#include "core/chaos.hh"
#include "core/framework.hh"
#include "core/serve.hh"
#include "core/stats_json.hh"
#include "format/serialize.hh"
#include "format/spill.hh"
#include "hw/trace_export.hh"
#include "prof/perf_counters.hh"
#include "prof/prof_json.hh"
#include "prof/profiler.hh"
#include "prof/trajectory.hh"
#include "report/attribution.hh"
#include "report/diff.hh"
#include "report/golden.hh"
#include "report/render.hh"
#include "report/stats_file.hh"
#include "sparse/matrix_market.hh"
#include "sparse/matrix_stats.hh"
#include "sparse/stream_ingest.hh"
#include "sparse/spy.hh"
#include "support/atomic_file.hh"
#include "support/error.hh"
#include "support/json.hh"
#include "support/json_value.hh"
#include "support/logging.hh"
#include "support/memory_budget.hh"
#include "support/obs.hh"
#include "support/resource_usage.hh"
#include "support/stats.hh"
#include "support/telemetry.hh"
#include "support/timer.hh"
#include "support/thread_pool.hh"
#include "support/table.hh"
#include "support/version.hh"
#include "workloads/suite.hh"

namespace {

using namespace spasm;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: spasm <command> [args]\n"
        "  spasm analyze  <matrix.mtx | workload>\n"
        "  spasm encode   <matrix.mtx | workload> -o <out.spasm>\n"
        "                 [--tile N] [--portfolio 0-9]\n"
        "  spasm ingest   <matrix.mtx> [--out out.spasm]\n"
        "                 [--portfolio 0-9] [--tile N]\n"
        "                 [--budget-mb N]  tracked-memory ceiling for\n"
        "                     the whole parse+encode\n"
        "                 [--spill-dir DIR]  enable out-of-core\n"
        "                     spill tiling under budget pressure\n"
        "                 [--chunk-kb N] [--flush-mb N]\n"
        "                 [--force-spill]  spill from the first\n"
        "                     triplet (testing)\n"
        "                 [--json out.json]  spasm-ingest-v1 stats\n"
        "                 bounded-memory streaming parse + encode\n"
        "                 (docs/ingestion.md); result is bit-\n"
        "                 identical to the in-memory path\n"
        "  spasm simulate <matrix.mtx | workload | file.spasm>\n"
        "                 [--config SPASM_4_1|SPASM_3_4|SPASM_3_2]\n"
        "                 [--tile N] [--iters N] [--stats]\n"
        "                 [--occupancy] [--trace out.csv]\n"
        "                 [--stats-json out.json]  schema-versioned\n"
        "                     JSON stats (spasm-stats-v1)\n"
        "                 [--trace-json out.json]  Chrome/Perfetto\n"
        "                     trace (open at ui.perfetto.dev)\n"
        "                 [--deterministic]  zero wall-clock fields\n"
        "                     for byte-reproducible JSON output\n"
        "                 [--no-fast-forward]  force the cycle-by-\n"
        "                     cycle reference simulator path (also\n"
        "                     accepted by profile and bench); the\n"
        "                     fast path is bit-identical, this is\n"
        "                     the regression oracle\n"
        "  spasm verify   <matrix.mtx | workload>\n"
        "  spasm spy      <matrix.mtx | workload> [-o out.pgm]\n"
        "                 [--resolution N]\n"
        "  spasm suite\n"
        "  spasm compare  <baseline.json> <candidate.json>\n"
        "                 [--strict] [--rel X] [--show-all]\n"
        "                 [--markdown out.md]\n"
        "                 exit 1 when any metric moves out of\n"
        "                 tolerance (see docs/regression.md)\n"
        "  spasm compare  --wallclock-trend BENCH_trajectory.json\n"
        "                 render the recorded wall-clock trend\n"
        "  spasm report   <stats.json> [--top N] [--markdown out.md]\n"
        "                 bottleneck attribution for one run;\n"
        "                 spasm-prof-v1 records get the host\n"
        "                 attribution verdict instead\n"
        "  spasm profile  <matrix.mtx | workload | file.spasm>\n"
        "                 [--config NAME] [--iters N]\n"
        "                 [--json out.json]  spasm-prof-v1 record\n"
        "                 [--flame out.txt]  flamegraph collapsed\n"
        "                     stacks (flamegraph.pl / speedscope)\n"
        "                 [--no-host-counters]  skip perf_event_open\n"
        "                 [--overhead]  also run unprofiled and\n"
        "                     print the profiler's overhead\n"
        "  spasm bench    [--iters N] [--label S]\n"
        "                 [--no-host-counters]\n"
        "                 [--record FILE]  append one entry to the\n"
        "                     committed wall-clock trajectory\n"
        "                     (spasm-bench-traj-v1)\n"
        "  spasm bless    [--dir DIR]  regenerate golden baselines\n"
        "                 (default DIR: bench/baselines)\n"
        "  spasm chaos    [--seed N] [--campaign default|storage|\n"
        "                 sim|degrade|ingest] [--workload NAME]\n"
        "                 [--deadline-ms X]  per-trial deadline for\n"
        "                     the sim campaign (timed-out bucket)\n"
        "                 [--json out.json]  seeded fault-injection\n"
        "                 campaign (docs/robustness.md); exit 1 on\n"
        "                 any silent corruption or crash\n"
        "  spasm batch    --manifest jobs.json\n"
        "                 [--journal run.journal] [--resume]\n"
        "                 [--out merged.json] [--deterministic]\n"
        "                 crash-safe batch campaign with per-job\n"
        "                 deadlines, retries and memory budgets\n"
        "                 (docs/robustness.md); exit 0 all ok,\n"
        "                 1 any job failed, 3 interrupted\n"
        "  spasm serve    [--socket PATH]  long-lived SpMV service\n"
        "                 (docs/serving.md): line-delimited JSON\n"
        "                 requests on stdin (default) or a Unix\n"
        "                 socket, responses on stdout / the socket\n"
        "                 [--cache-dir DIR]  crash-safe encoded-\n"
        "                     matrix cache (CRC-verified at start,\n"
        "                     torn entries quarantined)\n"
        "                 [--cache-capacity N]  in-memory LRU\n"
        "                     entries (default 8)\n"
        "                 [--max-inflight N]  admission slots;\n"
        "                     excess load is shed with a typed\n"
        "                     'overloaded' response (default 4)\n"
        "                 [--budget-mb N] [--request-budget-mb N]\n"
        "                     shared memory budget and per-request\n"
        "                     admission reserve\n"
        "                 [--deadline-ms X]  default per-request\n"
        "                     deadline  [--drain-ms N]  drain grace\n"
        "                 [--stats-json out.json]  spasm-serve-v1\n"
        "                     summary written at drain\n"
        "                 [--scan-only]  verify/quarantine the\n"
        "                     cache dir and exit\n"
        "                 [--deterministic]  zero wall-clock fields\n"
        "                 exit 0 clean drain, 3 forced cancel\n"
        "  spasm tail     <telemetry.jsonl> [--follow]\n"
        "                 render a spasm-telemetry-v1 stream:\n"
        "                 progress, throughput, EWMA ETA; --follow\n"
        "                 keeps watching until the end record\n"
        "  spasm --version\n"
        "global options:\n"
        "  --threads N    worker threads for pattern analysis and\n"
        "                 schedule exploration (default: hardware\n"
        "                 concurrency; results are identical at any\n"
        "                 thread count)\n"
        "  --telemetry FILE [--telemetry-interval-ms N]\n"
        "                 (simulate/batch/chaos/bench) sample live\n"
        "                 progress into an append-only JSONL stream\n"
        "                 (spasm-telemetry-v1, default 250 ms); also\n"
        "                 arms the crash flight recorder\n"
        "                 (FILE.flight.json) and routes structured\n"
        "                 logs into the stream\n"
        "  --prom FILE    (simulate) write a Prometheus text-\n"
        "                 exposition snapshot of the obs registry\n"
        "                 after the run\n");
    return 2;
}

const char *
scaleName(Scale scale)
{
    switch (scale) {
      case Scale::Tiny:
        return "tiny";
      case Scale::Small:
        return "small";
      case Scale::Full:
        return "full";
    }
    return "?";
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

CooMatrix
loadInput(const std::string &input)
{
    // .mtx paths go through the chunked streaming parser (same typed
    // errors, same resulting matrix, parallel when the file is big
    // enough to matter — see docs/ingestion.md).
    if (endsWith(input, ".mtx"))
        return readMatrixMarketStreamed(input);
    return generateWorkload(input, scaleFromEnv());
}

/** Find "--name value" in args; returns empty string if absent. */
std::string
optValue(const std::vector<std::string> &args, const char *name)
{
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == name)
            return args[i + 1];
    }
    return "";
}

int
cmdSuite()
{
    std::printf("%-15s %-26s %12s %12s\n", "name", "domain",
                "paper nnz", "paper rows");
    for (const auto &name : workloadNames()) {
        const auto &info = workloadInfo(name);
        std::printf("%-15s %-26s %12.3g %12d\n", name.c_str(),
                    info.domain.c_str(), info.paperNnz,
                    info.fullRows);
    }
    return 0;
}

int
cmdAnalyze(const std::string &input)
{
    const CooMatrix m = loadInput(input);
    std::printf("%s: %d x %d, %lld nnz, density %.3g\n",
                m.name().c_str(), m.rows(), m.cols(),
                static_cast<long long>(m.nnz()), m.density());

    const PatternGrid grid{4};
    const auto hist = PatternHistogram::analyze(
        m, grid,
        static_cast<int>(ThreadPool::global().concurrency()));
    std::printf("distinct 4x4 local patterns : %zu\n",
                hist.distinctPatterns());
    std::printf("occurrences (non-empty subs): %llu\n",
                static_cast<unsigned long long>(
                    hist.totalOccurrences()));
    std::printf("top-8 coverage              : %.1f%%\n",
                100.0 * hist.cdf(8).back());
    std::printf("patterns for 90%% coverage   : %zu\n",
                hist.topNForCoverage(0.9));

    const auto candidates = allCandidatePortfolios(grid);
    const auto sel = selectPortfolio(hist, candidates, 64);
    const auto &portfolio = candidates[sel.bestCandidate];
    std::printf("selected portfolio          : %d (%s)\n",
                portfolio.id(), portfolio.name().c_str());
    std::printf("padding rate                : %.1f%%\n",
                100.0 * paddingRate(hist, portfolio));

    const MatrixStats stats = computeMatrixStats(m);
    std::printf("global composition          : %s\n",
                globalCompositionName(classifyGlobalComposition(m))
                    .c_str());
    std::printf("row length avg/max          : %.1f / %lld (cv "
                "%.2f)\n",
                stats.avgRowLength,
                static_cast<long long>(stats.maxRowLength),
                stats.rowLengthCv);
    std::printf("bandwidth / diagonals       : %d / %lld\n",
                stats.bandwidth,
                static_cast<long long>(stats.occupiedDiagonals));
    std::printf("structurally symmetric      : %s\n\n",
                stats.structurallySymmetric ? "yes" : "no");
    std::printf("%s", spyAscii(m, 24).c_str());
    return 0;
}

int
cmdSpy(const std::string &input,
       const std::vector<std::string> &args)
{
    const CooMatrix m = loadInput(input);
    const std::string out = optValue(args, "-o");
    if (out.empty()) {
        std::printf("%s", spyAscii(m, 48).c_str());
        return 0;
    }
    const std::string res_opt = optValue(args, "--resolution");
    const int res = res_opt.empty() ? 256 : std::stoi(res_opt);
    writeSpyPgm(m, out, res);
    std::printf("wrote %dx%d spy plot of %s to %s\n", res, res,
                m.name().c_str(), out.c_str());
    return 0;
}

int
cmdEncode(const std::string &input,
          const std::vector<std::string> &args)
{
    const std::string out = optValue(args, "-o");
    if (out.empty()) {
        logError("cli", "encode: missing -o <out.spasm>");
        return 2;
    }
    const CooMatrix m = loadInput(input);

    const PatternGrid grid{4};
    const auto hist = PatternHistogram::analyze(m, grid);
    const auto candidates = allCandidatePortfolios(grid);
    int portfolio_id;
    const std::string p_opt = optValue(args, "--portfolio");
    if (p_opt.empty()) {
        portfolio_id =
            selectPortfolio(hist, candidates, 64).bestCandidate;
    } else {
        portfolio_id = std::stoi(p_opt);
        if (portfolio_id < 0 ||
            portfolio_id >= static_cast<int>(candidates.size())) {
            spasm_fatal("--portfolio must be 0..%zu",
                        candidates.size() - 1);
        }
    }

    const std::string t_opt = optValue(args, "--tile");
    Index tile = 1024;
    if (!t_opt.empty()) {
        tile = static_cast<Index>(std::stol(t_opt));
    } else {
        const auto profile =
            buildProfile(m, candidates[portfolio_id]);
        tile = exploreSchedule(profile, allHwConfigs()).tileSize;
    }

    const SpasmEncoder encoder(candidates[portfolio_id], tile);
    const SpasmMatrix enc = encoder.encode(m);
    writeSpasmFile(enc, out);
    std::printf("encoded %s -> %s\n", m.name().c_str(), out.c_str());
    std::printf("portfolio %d (%s), tile %d, %lld words, padding "
                "%.1f%%, %.1f KiB\n",
                portfolio_id,
                candidates[portfolio_id].name().c_str(), tile,
                static_cast<long long>(enc.numWords()),
                100.0 * enc.paddingRate(),
                static_cast<double>(enc.encodedBytes()) / 1024.0);
    return 0;
}

int
cmdIngest(const std::string &input,
          const std::vector<std::string> &args)
{
    if (!endsWith(input, ".mtx")) {
        logError("cli",
                 "ingest: input must be a MatrixMarket path (*.mtx); "
                 "built-in workloads are already in memory");
        return 2;
    }

    // Out-of-core ingest cannot run whole-matrix pattern analysis,
    // so the portfolio is fixed up front (default: candidate 0, the
    // same fallback the framework uses when analysis is skipped).
    const PatternGrid grid{4};
    const auto candidates = allCandidatePortfolios(grid);
    const std::string p_opt = optValue(args, "--portfolio");
    const int portfolio_id = p_opt.empty() ? 0 : std::stoi(p_opt);
    if (portfolio_id < 0 ||
        portfolio_id >= static_cast<int>(candidates.size())) {
        spasm_fatal("--portfolio must be 0..%zu",
                    candidates.size() - 1);
    }
    const std::string t_opt = optValue(args, "--tile");
    const Index tile = t_opt.empty()
        ? 1024
        : static_cast<Index>(std::stol(t_opt));
    const SpasmEncoder encoder(candidates[portfolio_id], tile);

    const std::string budget_opt = optValue(args, "--budget-mb");
    MemoryBudget budget(budget_opt.empty()
                            ? 0
                            : std::stoll(budget_opt) << 20);

    IngestEncodeOptions io;
    io.stream.budget = &budget;
    io.spill.budget = &budget;
    io.spill.dir = optValue(args, "--spill-dir");
    const std::string chunk_opt = optValue(args, "--chunk-kb");
    if (!chunk_opt.empty())
        io.stream.chunkBytes =
            static_cast<std::size_t>(std::stoll(chunk_opt)) << 10;
    const std::string flush_opt = optValue(args, "--flush-mb");
    if (!flush_opt.empty())
        io.spill.flushBytes = std::stoll(flush_opt) << 20;
    for (const std::string &a : args) {
        if (a == "--force-spill")
            io.forceSpill = true;
    }
    if (io.forceSpill && io.spill.dir.empty())
        spasm_fatal("--force-spill requires --spill-dir");

    // Quarantine leftovers of any previously killed run before
    // writing fresh spill files into the same directory.
    if (!io.spill.dir.empty()) {
        const auto swept = sweepSpillDir(io.spill.dir);
        for (const std::string &f : swept)
            std::printf("quarantined orphaned spill file %s\n",
                        f.c_str());
    }

    const IngestEncodeResult res =
        ingestEncodeMatrixMarket(input, encoder, io);

    std::printf("ingested %s: %lldx%lld, %lld nnz (%s)\n",
                input.c_str(),
                static_cast<long long>(res.matrix.rows()),
                static_cast<long long>(res.matrix.cols()),
                static_cast<long long>(res.matrix.nnz()),
                res.spilled ? "out-of-core" : "in-memory");
    std::printf("parse: %llu bytes, %llu lines, %llu chunks over "
                "%llu windows\n",
                static_cast<unsigned long long>(res.parse.bytes),
                static_cast<unsigned long long>(res.parse.lines),
                static_cast<unsigned long long>(res.parse.chunks),
                static_cast<unsigned long long>(res.parse.windows));
    if (res.spilled) {
        std::printf("spill: %llu bytes in %llu frames / %llu "
                    "buckets, %llu flushes\n",
                    static_cast<unsigned long long>(
                        res.spill.spillBytes),
                    static_cast<unsigned long long>(
                        res.spill.frames),
                    static_cast<unsigned long long>(
                        res.spill.buckets),
                    static_cast<unsigned long long>(
                        res.spill.flushes));
    }
    std::printf("encode: portfolio %d (%s), tile %d, %lld words, "
                "padding %.1f%%\n",
                portfolio_id,
                candidates[portfolio_id].name().c_str(), tile,
                static_cast<long long>(res.matrix.numWords()),
                100.0 * res.matrix.paddingRate());
    if (budget.limit() > 0) {
        std::printf("budget: peak %lld of %lld bytes tracked\n",
                    static_cast<long long>(budget.peak()),
                    static_cast<long long>(budget.limit()));
    }

    const std::string out = optValue(args, "--out");
    if (!out.empty()) {
        writeSpasmFile(res.matrix, out);
        std::printf("encoded matrix written to %s\n", out.c_str());
    }
    const std::string json = optValue(args, "--json");
    if (!json.empty()) {
        writeFileAtomic(json, [&](std::ostream &os) {
            writeIngestJson(os, input, res, budget.peak());
        });
        std::printf("ingest record written to %s\n", json.c_str());
    }
    return 0;
}

int
cmdSimulate(const std::string &input,
            const std::vector<std::string> &args)
{
    const std::string iters_opt = optValue(args, "--iters");
    const int iters = iters_opt.empty() ? 1 : std::stoi(iters_opt);
    const std::string cfg_opt = optValue(args, "--config");
    const std::string stats_json_path =
        optValue(args, "--stats-json");
    const std::string trace_json_path =
        optValue(args, "--trace-json");
    bool deterministic = false;
    bool no_fast_forward = false;
    for (const auto &a : args) {
        deterministic = deterministic || a == "--deterministic";
        no_fast_forward =
            no_fast_forward || a == "--no-fast-forward";
    }

    // The JSON sinks need the registry's spans/counters; plain text
    // runs keep observability off (and its cost at zero).
    const std::string prom_path = optValue(args, "--prom");
    const bool observe = !stats_json_path.empty() ||
        !trace_json_path.empty() || !prom_path.empty();
    if (observe) {
        obs::Registry::global().setEnabled(true);
        obs::Registry::global().clear();
    }

    SpasmMatrix enc;
    HwConfig config;
    PreprocessTimings timings;
    bool have_timings = false;
    int portfolio_id = -1;
    if (endsWith(input, ".spasm")) {
        enc = readSpasmFile(input);
        config = spasm41();
    } else {
        const CooMatrix m = loadInput(input);
        // Full preprocessing via the framework facade so timings and
        // stage spans land in the stats/trace output.
        const SpasmFramework framework;
        PreprocessResult pre = framework.preprocess(m);
        config = pre.schedule.config;
        timings = pre.timings;
        have_timings = true;
        portfolio_id = pre.portfolioId;
        const std::string t_opt = optValue(args, "--tile");
        if (!t_opt.empty() &&
            static_cast<Index>(std::stol(t_opt)) != pre.schedule.tileSize) {
            const Index tile = static_cast<Index>(std::stol(t_opt));
            enc = SpasmEncoder(pre.portfolio, tile).encode(m);
        } else {
            enc = std::move(pre.encoded);
        }
    }
    if (!cfg_opt.empty()) {
        bool found = false;
        for (const auto &c : allHwConfigs()) {
            if (c.name() == cfg_opt) {
                config = c;
                found = true;
            }
        }
        if (!found)
            spasm_fatal("unknown --config '%s'", cfg_opt.c_str());
    }

    Accelerator accel(config, enc.portfolio());
    accel.setFastForward(!no_fast_forward);
    const std::string trace_path = optValue(args, "--trace");
    std::vector<TraceEvent> trace;
    if (!trace_path.empty() || !trace_json_path.empty())
        accel.setTraceSink(&trace);

    const auto x = SpasmFramework::defaultX(enc.cols());
    std::vector<Value> y(enc.rows(), 0.0f);
    RunStats stats{};
    double total_seconds = 0.0;
    for (int i = 0; i < iters; ++i) {
        std::fill(y.begin(), y.end(), 0.0f);
        stats = accel.run(enc, x, y);
        total_seconds += stats.seconds;
    }

    if (!trace_path.empty()) {
        std::ofstream csv(trace_path);
        if (!csv)
            spasm_fatal("cannot open '%s'", trace_path.c_str());
        writeTraceCsv(csv, trace);
        std::printf("trace             : %zu events -> %s\n",
                    trace.size(), trace_path.c_str());
    }
    if (!trace_json_path.empty()) {
        std::ofstream out(trace_json_path);
        if (!out)
            spasm_fatal("cannot open '%s'", trace_json_path.c_str());
        ChromeTraceOptions topt;
        topt.deterministic = deterministic;
        writeChromeTrace(out, trace, &stats,
                         obs::Registry::global().spans(), topt);
        std::printf("trace json        : %zu events -> %s "
                    "(open at ui.perfetto.dev)\n",
                    trace.size(), trace_json_path.c_str());
    }
    if (!stats_json_path.empty()) {
        StatsReport report;
        report.inputName = input;
        report.rows = enc.rows();
        report.cols = enc.cols();
        report.nnz = static_cast<std::uint64_t>(enc.nnz());
        report.config = &config;
        report.tileSize = enc.tileSize();
        report.portfolioId = portfolio_id;
        report.stats = &stats;
        report.timings = have_timings ? &timings : nullptr;
        report.deterministic = deterministic;
        report.provenance.threads = static_cast<int>(
            ThreadPool::global().concurrency());
        const bool file_input =
            endsWith(input, ".mtx") || endsWith(input, ".spasm");
        if (!file_input)
            report.provenance.scale = scaleName(scaleFromEnv());
        writeFileAtomic(stats_json_path, [&](std::ostream &out) {
            writeStatsJson(out, report);
        });
        std::printf("stats json        : %s -> %s\n",
                    kStatsJsonSchema, stats_json_path.c_str());
    }
    if (!prom_path.empty()) {
        writeFileAtomic(prom_path, [&](std::ostream &out) {
            telemetry::writePrometheusText(out,
                                           obs::Registry::global());
        });
        std::printf("prometheus        : registry snapshot -> %s\n",
                    prom_path.c_str());
    }

    std::printf("config            : %s (%d HBM ch, %.0f GB/s, "
                "%.1f GFLOP/s peak)\n",
                config.name().c_str(), config.hbmChannels(),
                config.bandwidthGBs(), config.peakGflops());
    std::printf("tile size         : %d\n", enc.tileSize());
    std::printf("words / paddings  : %lld / %lld (%.1f%%)\n",
                static_cast<long long>(enc.numWords()),
                static_cast<long long>(enc.paddings()),
                100.0 * enc.paddingRate());
    std::printf("cycles            : %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("time              : %.3f us/iter (%d iters)\n",
                total_seconds / iters * 1e6, iters);
    std::printf("throughput        : %.2f GFLOP/s\n", stats.gflops);
    std::printf("bandwidth util    : %.1f%%\n",
                100.0 * stats.bandwidthUtilization);
    std::printf("compute util      : %.1f%%\n",
                100.0 * stats.computeUtilization);

    bool want_stats = false;
    bool want_occupancy = false;
    for (const auto &a : args) {
        want_stats = want_stats || a == "--stats";
        want_occupancy = want_occupancy || a == "--occupancy";
    }
    if (want_stats) {
        std::printf("\n");
        printStats(std::cout, stats);
    }
    if (want_occupancy && !stats.occupancyTimeline.empty()) {
        std::printf("\nPE occupancy p50/p95/p99: %.1f%% / %.1f%% / "
                    "%.1f%%\n",
                    100.0 * percentile(stats.occupancyTimeline, 0.50),
                    100.0 * percentile(stats.occupancyTimeline, 0.95),
                    100.0 * percentile(stats.occupancyTimeline, 0.99));
        std::printf("PE occupancy timeline (%llu cycles/bucket):\n",
                    static_cast<unsigned long long>(
                        stats.occupancyBucketCycles));
        for (double o : stats.occupancyTimeline) {
            const int bars = static_cast<int>(o * 50.0 + 0.5);
            std::printf("  %5.1f%% |%.*s\n", 100.0 * o, bars,
                        "#################################"
                        "#################");
        }
    }
    return 0;
}

int
cmdVerify(const std::string &input)
{
    // Full-pipeline verification: every portfolio x a spread of tile
    // sizes, encode -> round-trip -> simulate -> compare against the
    // reference SpMV.  Exit 0 iff everything agrees.
    const CooMatrix m = loadInput(input);
    std::printf("verifying %s: %d x %d, %lld nnz\n",
                m.name().c_str(), m.rows(), m.cols(),
                static_cast<long long>(m.nnz()));

    const PatternGrid grid{4};
    const auto candidates = allCandidatePortfolios(grid);
    const auto x = SpasmFramework::defaultX(m.cols());
    std::vector<Value> ref(m.rows(), 0.0f);
    m.spmv(x, ref);
    double scale = 1.0;
    for (Value v : ref) {
        scale = std::max(scale,
                         std::abs(static_cast<double>(v)));
    }

    int checks = 0, failures = 0;
    for (const auto &portfolio : candidates) {
        for (Index tile : {Index(64), Index(512)}) {
            const auto enc =
                SpasmEncoder(portfolio, tile).encode(m);
            bool ok = enc.toCoo() == m;

            Accelerator accel(spasm41(), portfolio);
            std::vector<Value> y(m.rows(), 0.0f);
            accel.run(enc, x, y);
            double max_err = 0.0;
            for (std::size_t i = 0; i < ref.size(); ++i) {
                max_err = std::max(
                    max_err, std::abs(static_cast<double>(y[i]) -
                                      ref[i]));
            }
            ok = ok && max_err < 1e-4 * scale;
            ++checks;
            if (!ok) {
                ++failures;
                std::printf("  FAIL portfolio %d tile %d "
                            "(max err %.3g)\n",
                            portfolio.id(), tile, max_err);
            }
        }
    }
    std::printf("%d/%d checks passed\n", checks - failures, checks);
    std::printf(failures == 0 ? "PASS\n" : "FAIL\n");
    return failures == 0 ? 0 : 1;
}

bool
hasFlag(const std::vector<std::string> &args, const char *name)
{
    for (const auto &a : args) {
        if (a == name)
            return true;
    }
    return false;
}

int
cmdCompare(const std::vector<std::string> &args)
{
    // Trend rendering is a standalone mode: no baseline/candidate
    // pair, just the committed trajectory file.
    const std::string trend_path =
        optValue(args, "--wallclock-trend");
    if (!trend_path.empty()) {
        const prof::Trajectory traj =
            prof::loadTrajectory(trend_path);
        if (traj.entries.empty()) {
            std::printf("no trajectory entries in %s\n",
                        trend_path.c_str());
            return 0;
        }
        prof::renderTrajectoryTrend(std::cout, traj);
        return 0;
    }
    if (args.size() < 2) {
        logError("cli",
                 "compare: need <baseline.json> <candidate.json>");
        return 2;
    }
    const auto baseline = report::loadStatsFile(args[0]);
    const auto candidate = report::loadStatsFile(args[1]);

    report::ToleranceSpec spec = report::ToleranceSpec::defaults();
    spec.strict = hasFlag(args, "--strict");
    const std::string rel_opt = optValue(args, "--rel");
    if (!rel_opt.empty())
        spec.defaultRel = std::stod(rel_opt);

    const auto diff = report::diffStats(baseline, candidate, spec);
    report::renderDiffText(std::cout, diff,
                           hasFlag(args, "--show-all"));

    const std::string md_path = optValue(args, "--markdown");
    if (!md_path.empty()) {
        writeFileAtomic(md_path, [&](std::ostream &out) {
            report::renderDiffMarkdown(out, diff);
        });
    }
    return diff.ok() ? 0 : 1;
}

int
cmdReport(const std::vector<std::string> &args)
{
    // Telemetry streams are JSONL, not a single JSON document, so
    // they are sniffed by their header line before the stats-file
    // loader (which would choke on line two) gets a chance.
    if (telemetry::looksLikeTelemetry(args[0])) {
        const telemetry::TelemetryStream stream =
            telemetry::loadTelemetry(args[0]);
        telemetry::renderTelemetryReport(std::cout, stream);
        return 0;
    }

    const auto file = report::loadStatsFile(args[0]);
    const std::string top_opt = optValue(args, "--top");
    const std::string md_path = optValue(args, "--markdown");

    // Profile records get the host-side verdict; everything else the
    // simulated-hardware bottleneck attribution.
    if (file.schema == "spasm-prof-v1") {
        const int top_n = top_opt.empty() ? 8 : std::stoi(top_opt);
        const auto rep = report::attributeHost(file, top_n);
        report::renderHostAttributionText(std::cout, rep);
        if (!md_path.empty()) {
            writeFileAtomic(md_path, [&](std::ostream &out) {
                report::renderHostAttributionMarkdown(out, rep);
            });
        }
        return 0;
    }

    const int top_n = top_opt.empty() ? 3 : std::stoi(top_opt);
    const auto rep = report::attributeBottleneck(file, top_n);
    report::renderBottleneckText(std::cout, rep);

    if (!md_path.empty()) {
        writeFileAtomic(md_path, [&](std::ostream &out) {
            report::renderBottleneckMarkdown(out, rep);
        });
    }
    return 0;
}

/**
 * Self-profile one run: the same load -> preprocess -> simulate
 * pipeline as `simulate`, executed under the prof registry (plus the
 * obs registry, which gates the thread-pool health accounting), with
 * host hardware counters around it.  Emits the spasm-prof-v1 record,
 * optional flamegraph stacks, and the host-vs-simulated verdict.
 */
int
cmdProfile(const std::string &input,
           const std::vector<std::string> &args)
{
    const std::string iters_opt = optValue(args, "--iters");
    const int iters = iters_opt.empty() ? 1 : std::stoi(iters_opt);
    const std::string cfg_opt = optValue(args, "--config");
    const std::string json_path = optValue(args, "--json");
    const std::string flame_path = optValue(args, "--flame");
    const bool no_counters = hasFlag(args, "--no-host-counters");
    const bool measure_overhead = hasFlag(args, "--overhead");
    const bool no_fast_forward = hasFlag(args, "--no-fast-forward");

    HwConfig config;
    std::uint64_t sim_cycles = 0;
    double sim_seconds = 0.0;
    std::uint64_t last_cycles = 0;

    // The profiled workload.  CLI-level regions (load_input) plus the
    // pipeline's own (preprocess + its six stages, schedule.explore,
    // sim.run / sim.cycle_loop) cover the whole wall clock, so the
    // record's depth-0 coverage stays >= 95%.
    const auto run_once = [&]() -> double {
        sim_cycles = 0;
        sim_seconds = 0.0;
        Timer wall;
        SpasmMatrix enc;
        if (endsWith(input, ".spasm")) {
            prof::Region region("load_input");
            enc = readSpasmFile(input);
            config = spasm41();
        } else {
            CooMatrix m = [&] {
                prof::Region region("load_input");
                return loadInput(input);
            }();
            const SpasmFramework framework;
            PreprocessResult pre = framework.preprocess(m);
            config = pre.schedule.config;
            enc = std::move(pre.encoded);
        }
        if (!cfg_opt.empty()) {
            bool found = false;
            for (const auto &c : allHwConfigs()) {
                if (c.name() == cfg_opt) {
                    config = c;
                    found = true;
                }
            }
            if (!found)
                spasm_fatal("unknown --config '%s'",
                            cfg_opt.c_str());
        }
        Accelerator accel(config, enc.portfolio());
        accel.setFastForward(!no_fast_forward);
        const auto x = SpasmFramework::defaultX(enc.cols());
        std::vector<Value> y(enc.rows(), 0.0f);
        for (int i = 0; i < iters; ++i) {
            std::fill(y.begin(), y.end(), 0.0f);
            const RunStats stats = accel.run(enc, x, y);
            sim_cycles += stats.cycles;
            sim_seconds += stats.seconds;
            last_cycles = stats.cycles;
        }
        return wall.elapsedMs();
    };

    // Identical obs settings for the baseline and the profiled run,
    // so --overhead isolates the *profiler's* marginal cost.  One
    // discarded warm-up plus best-of-two keeps allocator/page-cache
    // cold-start noise (easily 10%+ on tiny runs) out of the number.
    auto &reg = obs::Registry::global();
    reg.setEnabled(true);
    reg.clear();
    double baseline_ms = 0.0;
    if (measure_overhead) {
        run_once();
        baseline_ms = std::min(run_once(), run_once());
    }

    auto &profiler = prof::Profiler::global();
    profiler.setEnabled(true);
    profiler.clear();
    ThreadPool::global().resetHealth();
    prof::HostCounters counters(
        no_counters || prof::HostCounters::disabledByEnv());
    counters.start();
    double wall_ms = run_once();
    double profiled_best_ms = wall_ms;
    if (measure_overhead) {
        // Best-of-two on the profiled side as well; the record keeps
        // the *last* run so regions and wall_ms share one window.
        profiler.clear();
        ThreadPool::global().resetHealth();
        wall_ms = run_once();
        profiled_best_ms = std::min(profiled_best_ms, wall_ms);
    }
    counters.stop();
    ThreadPool::global().publishHealth();

    prof::ProfReport rep;
    rep.inputName = input;
    rep.threads =
        static_cast<int>(ThreadPool::global().concurrency());
    const bool file_input =
        endsWith(input, ".mtx") || endsWith(input, ".spasm");
    if (!file_input)
        rep.scale = scaleName(scaleFromEnv());
    rep.rusage = currentResourceUsage();
    rep.wallMs = wall_ms;
    rep.regions = profiler.snapshot();
    const ThreadPool::HealthSnapshot health =
        ThreadPool::global().healthSnapshot();
    rep.pool.workers = static_cast<int>(health.workers);
    rep.pool.loops = health.loops;
    rep.pool.queueWaitCount = health.queueWaitCount;
    rep.pool.queueWaitTotalMs =
        static_cast<double>(health.queueWaitTotalNs) / 1e6;
    rep.pool.queueWaitMaxMs =
        static_cast<double>(health.queueWaitMaxNs) / 1e6;
    for (std::size_t i = 0; i < health.workerBusyNs.size(); ++i) {
        prof::ProfPoolWorker w;
        w.worker = static_cast<int>(i);
        w.busyMs = static_cast<double>(health.workerBusyNs[i]) / 1e6;
        w.busyFraction =
            wall_ms > 0.0 ? std::min(1.0, w.busyMs / wall_ms) : 0.0;
        rep.pool.workersBusy.push_back(w);
    }
    rep.counters = counters.read();
    rep.simCycles = sim_cycles;
    rep.simSeconds = sim_seconds;

    std::ostringstream record;
    prof::writeProfJson(record, rep);
    if (!json_path.empty()) {
        writeFileAtomic(json_path, [&](std::ostream &out) {
            out << record.str();
        });
        std::printf("profile json      : %s -> %s\n",
                    prof::kProfJsonSchema, json_path.c_str());
    }
    if (!flame_path.empty()) {
        writeFileAtomic(flame_path, [&](std::ostream &out) {
            prof::writeFlamegraphCollapsed(out, rep.regions);
        });
        std::printf("flamegraph        : %zu regions -> %s\n",
                    rep.regions.size(), flame_path.c_str());
    }

    std::printf("cycles            : %llu\n",
                static_cast<unsigned long long>(last_cycles));
    std::printf("wall              : %.2f ms (%d iters)\n", wall_ms,
                iters);
    std::printf("coverage          : %.1f%% of wall attributed to "
                "named regions\n",
                100.0 * prof::attributedCoverage(rep.regions,
                                                 wall_ms));
    if (measure_overhead && baseline_ms > 0.0) {
        std::printf("profiler overhead : %.2f%% (unprofiled %.2f "
                    "ms, profiled %.2f ms, best of 2 each)\n",
                    100.0 * (profiled_best_ms - baseline_ms) /
                        baseline_ms,
                    baseline_ms, profiled_best_ms);
    }
    if (!rep.counters.available) {
        std::printf("host counters     : unavailable (%s)\n",
                    rep.counters.degradation.c_str());
    }
    std::printf("\n");

    // The verdict, rendered from the same record a consumer would
    // load — no second code path to drift.
    std::string parse_error;
    report::StatsFile pf;
    pf.path = json_path.empty() ? "<profile>" : json_path;
    pf.root = parseJson(record.str(), &parse_error);
    if (!parse_error.empty())
        spasm_fatal("internal: profile record does not parse: %s",
                    parse_error.c_str());
    pf.schema = prof::kProfJsonSchema;
    pf.schemaMinor = prof::kProfJsonSchemaMinor;
    const auto verdict = report::attributeHost(pf);
    report::renderHostAttributionText(std::cout, verdict);

    profiler.setEnabled(false);
    reg.setEnabled(false);
    return 0;
}

/**
 * Wall-clock the golden workloads (Tiny-pinned, same specs as
 * `bless`) with the profiler OFF — pure timers plus host counters —
 * and optionally append one entry to the committed trajectory.
 */
int
cmdBench(const std::vector<std::string> &args)
{
    const std::string iters_opt = optValue(args, "--iters");
    const int iters = iters_opt.empty() ? 3 : std::stoi(iters_opt);
    const std::string record_path = optValue(args, "--record");
    const std::string label = optValue(args, "--label");

    prof::HostCounters counters(
        hasFlag(args, "--no-host-counters") ||
        prof::HostCounters::disabledByEnv());

    prof::TrajectoryEntry entry;
    entry.label = label.empty() ? "local" : label;
    entry.scale = "tiny";
    entry.threads =
        static_cast<int>(ThreadPool::global().concurrency());
    entry.iters = iters;
    entry.countersAvailable = counters.available();

    TextTable table("golden workload wall clock (Tiny, " +
                    std::to_string(iters) + " sim iters)");
    table.setHeader({"workload", "config", "wall ms", "pre ms",
                     "sim ms", "Mcyc/s", "ipc"});

    double total_wall = 0.0;
    double total_sim_ms = 0.0;
    std::uint64_t total_cycles = 0;
    telemetry::beginCampaign(report::goldenSpecs().size());
    for (const auto &spec : report::goldenSpecs()) {
        Timer wall;
        const CooMatrix m =
            generateWorkload(spec.workload, Scale::Tiny);
        const SpasmFramework framework;
        Timer pre_timer;
        PreprocessResult pre = framework.preprocess(m);
        const double pre_ms = pre_timer.elapsedMs();

        HwConfig config;
        bool found = false;
        for (const auto &c : allHwConfigs()) {
            if (c.name() == spec.config) {
                config = c;
                found = true;
            }
        }
        if (!found)
            spasm_fatal("golden spec names unknown config '%s'",
                        spec.config.c_str());

        Accelerator accel(config, pre.portfolio);
        accel.setFastForward(
            !hasFlag(args, "--no-fast-forward"));
        const auto x = SpasmFramework::defaultX(m.cols());
        std::vector<Value> y(m.rows(), 0.0f);
        counters.start();
        Timer sim_timer;
        std::uint64_t cycles = 0;
        for (int i = 0; i < iters; ++i) {
            std::fill(y.begin(), y.end(), 0.0f);
            const RunStats stats =
                accel.run(pre.encoded, x, y, pre.policy);
            cycles += stats.cycles;
        }
        const double sim_ms = sim_timer.elapsedMs();
        counters.stop();
        const prof::HostCounterValues vals = counters.read();

        prof::TrajectoryWorkload w;
        w.name = spec.workload;
        w.config = spec.config;
        w.wallMs = wall.elapsedMs();
        w.preprocessMs = pre_ms;
        w.simulateMs = sim_ms;
        w.simCycles = cycles;
        w.simCyclesPerHostSec =
            sim_ms > 0.0 ? static_cast<double>(cycles) /
                               (sim_ms / 1000.0)
                         : 0.0;
        w.ipc = vals.ipc();
        w.cacheMissRate = vals.cacheMissRate();
        entry.workloads.push_back(w);

        total_wall += w.wallMs;
        total_sim_ms += sim_ms;
        total_cycles += cycles;
        table.addRow({w.name, w.config, TextTable::fmt(w.wallMs, 2),
                      TextTable::fmt(pre_ms, 2),
                      TextTable::fmt(sim_ms, 2),
                      TextTable::fmt(w.simCyclesPerHostSec / 1e6, 2),
                      TextTable::fmt(w.ipc, 2)});
        telemetry::noteJobDone(true);
    }
    telemetry::endCampaign();
    entry.totalWallMs = total_wall;
    entry.simCyclesPerHostSec =
        total_sim_ms > 0.0 ? static_cast<double>(total_cycles) /
                                 (total_sim_ms / 1000.0)
                           : 0.0;
    table.print(std::cout);
    std::printf("total: %.2f ms wall, %.3g simulated cycles per "
                "host second\n",
                total_wall, entry.simCyclesPerHostSec);

    // The serving layer's trajectory point: closed-loop requests
    // over Server::handleLine — one cold miss pays preprocessing,
    // then a hit-dominated steady state (the common serving regime).
    {
        serve::ServeOptions sopts;
        sopts.deterministic = true;
        serve::Server server(sopts);
        const CooMatrix m = generateWorkload("cfd2", Scale::Tiny);
        std::ostringstream mtx;
        writeMatrixMarket(m, mtx);
        std::ostringstream req;
        JsonWriter w(req, -1);
        w.beginObject();
        w.field("id", "bench");
        w.key("matrix");
        w.beginObject();
        w.field("mtx", mtx.str());
        w.endObject();
        w.endObject();
        const std::string line = req.str();
        server.handleLine(line); // cold: the one preprocessing run
        const int serve_reqs = 32;
        Timer serve_timer;
        for (int i = 0; i < serve_reqs; ++i)
            server.handleLine(line);
        const double serve_ms = serve_timer.elapsedMs();
        server.drain();
        entry.serveRequestsPerHostSec =
            serve_ms > 0.0 ? serve_reqs / (serve_ms / 1000.0) : 0.0;
        std::printf("serve.requests_per_host_sec: %.1f "
                    "(hit-dominated closed loop, %d requests)\n",
                    entry.serveRequestsPerHostSec, serve_reqs);
    }
    if (!counters.available()) {
        std::printf("host counters: unavailable (%s)\n",
                    counters.degradation().c_str());
    }

    if (!record_path.empty()) {
        prof::appendTrajectoryEntry(record_path, entry);
        std::printf("trajectory entry appended to %s (%s)\n",
                    record_path.c_str(), prof::kTrajectorySchema);
    }
    return 0;
}

/**
 * Run one golden spec deterministically and write its stats record.
 * Goldens are pinned to Tiny scale so they regenerate bit-identically
 * everywhere, regardless of SPASM_SCALE.
 */
void
blessOne(const report::GoldenSpec &spec, const std::string &path)
{
    auto &reg = obs::Registry::global();
    reg.setEnabled(true);
    reg.clear();

    const CooMatrix m = generateWorkload(spec.workload, Scale::Tiny);
    const SpasmFramework framework;
    PreprocessResult pre = framework.preprocess(m);

    HwConfig config;
    bool found = false;
    for (const auto &c : allHwConfigs()) {
        if (c.name() == spec.config) {
            config = c;
            found = true;
        }
    }
    if (!found)
        spasm_fatal("golden spec names unknown config '%s'",
                    spec.config.c_str());

    Accelerator accel(config, pre.portfolio);
    const auto x = SpasmFramework::defaultX(m.cols());
    std::vector<Value> y(m.rows(), 0.0f);
    const RunStats stats = accel.run(pre.encoded, x, y, pre.policy);

    StatsReport rep;
    rep.inputName = spec.workload;
    rep.rows = pre.encoded.rows();
    rep.cols = pre.encoded.cols();
    rep.nnz = static_cast<std::uint64_t>(pre.encoded.nnz());
    rep.config = &config;
    rep.tileSize = pre.encoded.tileSize();
    rep.portfolioId = pre.portfolioId;
    rep.stats = &stats;
    rep.timings = &pre.timings;
    rep.deterministic = true;
    rep.provenance.threads =
        static_cast<int>(ThreadPool::global().concurrency());
    rep.provenance.scale = "tiny";
    writeFileAtomic(path, [&](std::ostream &out) {
        writeStatsJson(out, rep);
    });

    reg.clear();
    reg.setEnabled(false);
}

int
cmdBless(const std::vector<std::string> &args)
{
    std::string dir = optValue(args, "--dir");
    if (dir.empty())
        dir = "bench/baselines";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        spasm_fatal("cannot create baseline directory '%s': %s",
                    dir.c_str(), ec.message().c_str());
    for (const auto &spec : report::goldenSpecs()) {
        const std::string path =
            dir + "/" + report::goldenFileName(spec);
        blessOne(spec, path);
        std::printf("blessed %s x %s -> %s\n", spec.workload.c_str(),
                    spec.config.c_str(), path.c_str());
    }
    return 0;
}

int
cmdChaos(const std::vector<std::string> &args)
{
    ChaosOptions opt;
    opt.scale = scaleFromEnv();
    const std::string seed = optValue(args, "--seed");
    if (!seed.empty())
        opt.seed = std::stoull(seed);
    const std::string campaign = optValue(args, "--campaign");
    if (!campaign.empty())
        opt.campaign = campaign;
    const std::string workload = optValue(args, "--workload");
    if (!workload.empty())
        opt.workload = workload;
    const std::string deadline = optValue(args, "--deadline-ms");
    if (!deadline.empty())
        opt.deadlineMs = std::stod(deadline);

    const ChaosReport report = runChaosCampaign(opt);
    printChaosReport(report);

    const std::string json = optValue(args, "--json");
    if (!json.empty()) {
        writeFileAtomic(json, [&](std::ostream &out) {
            writeChaosJson(out, report);
        });
        std::printf("chaos record written to %s\n", json.c_str());
    }
    return report.clean() ? 0 : 1;
}

/** Set by the SIGINT/SIGTERM handler; the campaign token watches it
 *  and cancels in-flight jobs cooperatively — no async-signal-unsafe
 *  work happens in the handler itself. */
volatile std::sig_atomic_t g_batchSignal = 0;

void
batchSignalHandler(int sig)
{
    g_batchSignal = sig;
}

int
cmdBatch(const std::vector<std::string> &args)
{
    BatchOptions opt;
    opt.manifestPath = optValue(args, "--manifest");
    if (opt.manifestPath.empty()) {
        logError("cli", "batch: missing --manifest <jobs.json>");
        return 2;
    }
    opt.journalPath = optValue(args, "--journal");
    if (opt.journalPath.empty())
        opt.journalPath = opt.manifestPath + ".journal";
    opt.resume = hasFlag(args, "--resume");
    opt.deterministic = hasFlag(args, "--deterministic");
    opt.signalFlag = &g_batchSignal;

    std::signal(SIGINT, batchSignalHandler);
    std::signal(SIGTERM, batchSignalHandler);
    const BatchResult result = runBatchCampaign(opt);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);

    printBatchReport(result);
    const std::string out = optValue(args, "--out");
    if (!out.empty()) {
        writeFileAtomic(out, [&](std::ostream &os) {
            writeBatchJson(os, result);
        });
        std::printf("batch record written to %s\n", out.c_str());
    }
    std::printf("journal: %s\n", opt.journalPath.c_str());
    return batchExitCode(result);
}

/**
 * Long-lived SpMV service (docs/serving.md).  Line-delimited JSON
 * requests on stdin or a Unix socket; each unique matrix is
 * preprocessed once and cached (crash-safe on-disk cache when
 * --cache-dir is given).  SIGINT/SIGTERM starts a graceful drain:
 * admission closes, in-flight requests finish against their own
 * deadlines, stragglers are cancelled after --drain-ms.
 */
int
cmdServe(const std::vector<std::string> &args)
{
    serve::ServeOptions opt;
    opt.cacheDir = optValue(args, "--cache-dir");
    const std::string cap = optValue(args, "--cache-capacity");
    if (!cap.empty()) {
        const int n = std::stoi(cap);
        if (n < 1) {
            logError("cli", "serve: --cache-capacity must be >= 1");
            return 2;
        }
        opt.cacheCapacity = static_cast<std::size_t>(n);
    }
    const std::string inflight = optValue(args, "--max-inflight");
    if (!inflight.empty()) {
        const int n = std::stoi(inflight);
        if (n < 1) {
            logError("cli", "serve: --max-inflight must be >= 1");
            return 2;
        }
        opt.maxInFlight = static_cast<std::size_t>(n);
    }
    const std::string budget_mb = optValue(args, "--budget-mb");
    if (!budget_mb.empty())
        opt.budgetBytes = std::stoll(budget_mb) * (1ll << 20);
    const std::string req_mb = optValue(args, "--request-budget-mb");
    if (!req_mb.empty())
        opt.perRequestBytes = std::stoll(req_mb) * (1ll << 20);
    const std::string deadline = optValue(args, "--deadline-ms");
    if (!deadline.empty())
        opt.defaultDeadlineMs = std::stod(deadline);
    const std::string drain_ms = optValue(args, "--drain-ms");
    if (!drain_ms.empty())
        opt.drainMs = std::stoll(drain_ms);
    opt.deterministic = hasFlag(args, "--deterministic");

    // The serve counters (sheds, cache outcomes, latency histogram)
    // ARE the product here — observability is always on.
    obs::Registry::global().setEnabled(true);
    obs::Registry::global().clear();

    serve::Server server(opt, &g_batchSignal);
    const EncodedMatrixCache::ScanReport scan = server.scanCache();
    if (!opt.cacheDir.empty())
        logInform("serve",
                  "cache scan: %zu usable, %zu quarantined (%s)",
                  scan.usable, scan.quarantined, opt.cacheDir.c_str());
    if (hasFlag(args, "--scan-only"))
        return 0;

    // No SA_RESTART: a SIGINT/SIGTERM must make the blocked stdin
    // read (or socket poll) return so the drain can start.  The
    // request tokens do not watch the flag — in-flight work finishes
    // against its own deadline.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = batchSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    const std::string socket_path = optValue(args, "--socket");
    const int code = socket_path.empty()
                         ? server.runStdio(std::cin, std::cout)
                         : server.runUnixSocket(socket_path);

    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);

    const std::string stats = optValue(args, "--stats-json");
    if (!stats.empty()) {
        writeFileAtomic(stats, [&](std::ostream &os) {
            server.writeSummaryJson(os);
        });
        logInform("serve", "summary written to %s", stats.c_str());
    }
    const std::string prom = optValue(args, "--prom");
    if (!prom.empty()) {
        writeFileAtomic(prom, [&](std::ostream &os) {
            telemetry::writePrometheusText(os,
                                           obs::Registry::global());
        });
        logInform("serve", "prometheus text written to %s",
                  prom.c_str());
    }

    const serve::ServeSummary sum = server.summary();
    logInform("serve",
              "served %llu requests (%llu ok, %llu errors, "
              "%llu shed); cache %llu hits / %llu warm / %llu miss",
              static_cast<unsigned long long>(sum.requests),
              static_cast<unsigned long long>(sum.ok),
              static_cast<unsigned long long>(sum.errors),
              static_cast<unsigned long long>(sum.shed),
              static_cast<unsigned long long>(sum.cache.hits),
              static_cast<unsigned long long>(sum.cache.warmHits),
              static_cast<unsigned long long>(sum.cache.misses));
    return code;
}

/**
 * Render a spasm-telemetry-v1 stream.  Without --follow: one shot.
 * With --follow: poll the file, print samples as they appear, exit
 * when the clean-shutdown end record arrives (a stream that never
 * gets one — killed producer — is followed until the user ^Cs).
 */
int
cmdTail(const std::string &path, const std::vector<std::string> &args)
{
    if (!hasFlag(args, "--follow")) {
        const telemetry::TelemetryStream stream =
            telemetry::loadTelemetry(path);
        telemetry::renderTelemetry(std::cout, stream);
        return 0;
    }

    std::uint64_t last_seq = 0;
    bool header_shown = false;
    for (;;) {
        telemetry::TelemetryStream stream;
        try {
            stream = telemetry::loadTelemetry(path);
        } catch (const Error &) {
            // Not there yet, or only a torn prefix — keep waiting.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
            continue;
        }
        if (!header_shown) {
            std::printf("following %s: %s (interval %d ms)\n",
                        path.c_str(), stream.generator.c_str(),
                        stream.intervalMs);
            header_shown = true;
        }
        for (const auto &s : stream.samples) {
            if (s.seq > last_seq) {
                telemetry::renderTelemetrySample(std::cout, s);
                last_seq = s.seq;
            }
        }
        std::cout.flush();
        if (stream.sawEnd) {
            std::printf("stream ended cleanly (%zu samples)\n",
                        stream.samples.size());
            return 0;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
}

/**
 * RAII lifecycle for `--telemetry <path>`: starts the sampler (which
 * also arms the flight recorder, installs crash handlers and routes
 * structured logs into the stream) and stops it — final sample + end
 * record — when the command returns or unwinds.
 */
class TelemetryScope
{
  public:
    explicit TelemetryScope(const std::vector<std::string> &args)
    {
        const std::string path = optValue(args, "--telemetry");
        if (path.empty())
            return;
        telemetry::TelemetryOptions opts;
        opts.path = path;
        const std::string interval =
            optValue(args, "--telemetry-interval-ms");
        if (!interval.empty())
            opts.intervalMs = std::stoi(interval);
        opts.deterministic = hasFlag(args, "--deterministic");
        started_ = telemetry::Sampler::global().start(opts);
    }

    ~TelemetryScope()
    {
        if (started_)
            telemetry::Sampler::global().stop();
    }

    TelemetryScope(const TelemetryScope &) = delete;
    TelemetryScope &operator=(const TelemetryScope &) = delete;

  private:
    bool started_ = false;
};

int
run(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i)
        args.emplace_back(argv[i]);

    // Global --threads N (default: hardware concurrency).  All
    // parallel stages reduce deterministically, so outputs are
    // identical at any thread count.
    const std::string threads_opt = optValue(args, "--threads");
    if (!threads_opt.empty()) {
        const int n = std::stoi(threads_opt);
        if (n < 1)
            spasm_fatal("--threads must be >= 1");
        ThreadPool::setGlobalConcurrency(
            static_cast<unsigned>(n));
    }

    if (cmd == "--version" || cmd == "version") {
        std::printf("%s\n", versionBanner());
        return 0;
    }
    // Live telemetry rides on any long-running verb (simulate /
    // batch / chaos / bench take the flag; it is inert elsewhere).
    // Scoped here so the end record and flight-recorder disarm
    // happen on BOTH clean return and exception unwind.
    TelemetryScope telemetry_scope(args);
    if (cmd == "suite")
        return cmdSuite();
    if (cmd == "bless")
        return cmdBless(args);
    if (cmd == "chaos")
        return cmdChaos(args);
    if (cmd == "batch")
        return cmdBatch(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "compare")
        return cmdCompare(args);
    if (cmd == "bench")
        return cmdBench(args);
    if (args.empty())
        return usage();
    if (cmd == "tail")
        return cmdTail(args[0], args);
    if (cmd == "report")
        return cmdReport(args);
    if (cmd == "profile")
        return cmdProfile(args[0], args);
    if (cmd == "analyze")
        return cmdAnalyze(args[0]);
    if (cmd == "encode")
        return cmdEncode(args[0], args);
    if (cmd == "ingest")
        return cmdIngest(args[0], args);
    if (cmd == "simulate")
        return cmdSimulate(args[0], args);
    if (cmd == "verify")
        return cmdVerify(args[0]);
    if (cmd == "spy")
        return cmdSpy(args[0], args);
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    // Typed input errors (corrupt .spasm containers, malformed
    // MatrixMarket files, bad campaign names) are recoverable: report
    // the diagnostic — which carries the byte/line position — and
    // exit 1 instead of aborting.
    try {
        return run(argc, argv);
    } catch (const Error &e) {
        // logError renders exactly the historical "spasm: error: "
        // stderr prefix, and additionally lands the diagnostic in the
        // JSONL sink / flight recorder when telemetry is on.
        logError("cli", "%s", e.what());
        return 1;
    }
}
