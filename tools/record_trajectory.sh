#!/bin/sh
# Append one entry to the committed wall-clock trajectory
# (BENCH_trajectory.json, schema spasm-bench-traj-v1) by running the
# golden workloads through `spasm bench --record`.
#
# Usage: tools/record_trajectory.sh [label] [trajectory-file]
#
# Environment:
#   SPASM_BIN          spasm binary (default: build/tools/spasm)
#   SPASM_BENCH_ITERS  sim iterations per workload (default: 3)
#
# The label defaults to `git describe` so entries self-identify; pass
# an explicit one (e.g. "ci") where describe is meaningless.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
label="${1:-$(git -C "$repo_root" describe --always --dirty \
    2>/dev/null || echo local)}"
file="${2:-$repo_root/BENCH_trajectory.json}"
bin="${SPASM_BIN:-$repo_root/build/tools/spasm}"

if [ ! -x "$bin" ]; then
    echo "record_trajectory: spasm binary not found at $bin" \
         "(build first, or set SPASM_BIN)" >&2
    exit 2
fi

exec "$bin" bench --iters "${SPASM_BENCH_ITERS:-3}" \
    --record "$file" --label "$label"
